// Package core implements the paper's primary contribution: the MDV
// publish & subscribe filter algorithm (paper §3), built entirely on the
// relational engine (internal/rdb) through its SQL layer — mirroring the
// paper's implementation on "a standard relational database system".
//
// The engine maintains:
//
//   - the registered metadata itself (Statements, Resources, Documents);
//   - the decomposed subscription rules: AtomicRules with their kinds
//     (triggering vs. join), the global dependency graph
//     (RuleDependencies), join-rule groups (RuleGroups/JoinRules), and the
//     per-operator filter tables FilterRulesANY/EQ/EQN/NE/CON/LT/LE/GT/GE
//     (§3.3.4);
//   - materialized results of every atomic rule (RuleResults, §3.4);
//   - subscriptions mapping end rules to subscribers.
//
// Registration of documents runs the filter (§3.4); re-registration and
// deletion run it three times per §3.5 to compute removal candidates. The
// engine produces a PublishSet per batch: the per-subscriber changesets an
// MDP sends to its LMRs.
package core

import (
	"fmt"
	"sync"

	"mdv/internal/rdb/sql"
	"mdv/internal/rdf"
	"mdv/internal/rules"
)

// Options tune the engine, mainly for the ablation experiments.
type Options struct {
	// DisableRuleGroups evaluates every join rule individually instead of
	// batching group members (ablation of §3.3.3).
	DisableRuleGroups bool
	// DisableSharing gives every registered rule private atomic rules
	// instead of merging equivalent ones into the global dependency graph
	// (ablation of §3.3.2).
	DisableSharing bool
	// DisableTypedIndexes makes numeric comparisons reconvert string-stored
	// constants via CAST at match time, as the paper's prototype does
	// (§3.3.4), instead of comparing the typed num_value columns through
	// their ordered indexes. Ablation of the sub-linear triggering path.
	DisableTypedIndexes bool
	// DisableTextIndex makes `contains` triggering join every document atom
	// against its whole FilterRulesCON (class, property) cohort with per-rule
	// strings.Contains probes, as the paper's prototype does, instead of one
	// Aho-Corasick pass over the rule constants (textindex.go). Ablation of
	// the sub-linear text triggering path.
	DisableTextIndex bool
	// DisableInterestCoalescing builds one changeset per subscriber instead
	// of one per interest group, with per-group URI caches disabled —
	// the pre-coalescing per-subscriber delivery path, kept as the
	// fan-out ablation.
	DisableInterestCoalescing bool
	// Shards partitions the triggering phase of every filter run across
	// this many independent engine sections keyed by a stable hash of
	// (class, property), evaluated concurrently and merged in shard order
	// so the output stays byte-identical to the serial engine. 0 or 1 run
	// the serial path; cmd/mdp defaults its -shards flag to GOMAXPROCS.
	Shards int
	// DisableShardedTriggering forces the serial triggering path regardless
	// of Shards (ablation of the partition-parallel phase 1).
	DisableShardedTriggering bool
}

// effectiveShards resolves the configured shard count to the number of
// sections the engine actually builds (1 = serial path, no shard state).
func (o Options) effectiveShards() int {
	if o.DisableShardedTriggering || o.Shards < 2 {
		return 1
	}
	if o.Shards > maxShards {
		return maxShards
	}
	return o.Shards
}

// Stats counts engine work, exposed for the performance experiments.
type Stats struct {
	DocumentsRegistered int
	ResourcesRegistered int
	FilterRuns          int
	FilterIterations    int
	TriggeringMatches   int
	JoinEvaluations     int
	JoinMatches         int
	AtomicRulesShared   int // registrations that reused an existing atomic rule
	AtomicRulesCreated  int
	// Interest-group coalescing counters: how many delivery groups batches
	// produced, how many subscriber slots those groups covered, and how
	// much changeset construction actually ran. ChangesetsBuilt counts one
	// per group (not per subscriber); UpsertsBuilt counts resource-fetch +
	// strong-closure walks, deduplicated by the per-batch URI cache.
	PublishGroups      int
	GroupedSubscribers int
	ChangesetsBuilt    int
	UpsertsBuilt       int
	// Sharded-triggering counters: filter runs whose phase 1 fanned out
	// across the per-shard sections, and how many sections those runs
	// actually executed (shards no atom routed to are skipped). Both stay
	// zero on a serial engine.
	ShardedFilterRuns int
	ShardSectionsRun  int
}

// Engine is the MDV filter engine of one Metadata Provider.
//
// Concurrency: mu is a reader/writer lock. Mutating operations
// (RegisterDocuments, DeleteDocument, Subscribe, Unsubscribe,
// RegisterNamedRule, Save) hold it exclusively; read-only inspection
// (Subscriptions, SubscriptionsOf, EndRulesOf, MatchingResources,
// NamedRules, Stats, Browse, GetResource, StoredDocument, DocumentURIs,
// RuleResultsOf, ResubscribeFill, the counters) holds it shared, so any
// number of readers run concurrently and block only while a writer is in
// its exclusive section. Internal helpers suffixed "Locked" assume the
// caller holds mu in the required mode. The stats counters are mutated
// only under the exclusive lock, so a shared lock suffices for a
// consistent snapshot.
type Engine struct {
	mu     sync.RWMutex
	db     *sql.DB
	schema *rdf.Schema
	opts   Options
	stats  Stats

	nextRuleID  int64
	nextSubID   int64
	nextGroupID int64
	// disambig makes rule texts unique when sharing is disabled.
	disambig int64

	// named holds rules registered under a name, usable as extensions of
	// later rules (paper §2.3: an extension is "either some class defined
	// in the schema or another subscription rule").
	named map[string]*rules.NormalRule

	prep  prepared
	cache stmtCache

	// shards is the partitioned triggering machinery (shard.go); nil when
	// the engine runs the serial path, which keeps the degenerate case free
	// of any shard overhead.
	shards *shardSet

	// text is the contains-rule substring index (textindex.go); nil under
	// Options.DisableTextIndex, which leaves the CON triggering query in
	// charge. Derived state: FilterRulesCON stays authoritative.
	text *textIndex

	// obs holds the optional metrics and slow-publish-log hooks; zero value
	// means fully disabled (one atomic nil load per instrumented site).
	obs engineObs
}

// prepared holds the engine's prepared statements (the filter issues a
// fixed query set; preparing them once keeps the hot path allocation-light).
type prepared struct {
	insStatement  *sql.Stmt
	delStatements *sql.Stmt
	insResource   *sql.Stmt
	delResource   *sql.Stmt
	insFilterData *sql.Stmt
	clearFilter   *sql.Stmt
	stmtsOfURI    *sql.Stmt
	// trig holds the ten triggering queries in the canonical operator order
	// of trigOpNames (ANY, EQ, EQN, NE, NEN, CON, LT, LE, GT, GE).
	trig          [numTrigOps]*sql.Stmt
	resultHas     *sql.Stmt
	resultIns     *sql.Stmt
	resultDel     *sql.Stmt
	resultObjIns  *sql.Stmt
	subsOfEndRule *sql.Stmt
	strongRefsTo  *sql.Stmt
	resourceClass *sql.Stmt
}

// NewEngine creates an engine with a fresh database.
func NewEngine(schema *rdf.Schema) (*Engine, error) {
	return NewEngineWithOptions(schema, Options{})
}

// NewEngineWithOptions creates an engine with explicit options.
func NewEngineWithOptions(schema *rdf.Schema, opts Options) (*Engine, error) {
	e := &Engine{db: sql.Open(), schema: schema, opts: opts, named: map[string]*rules.NormalRule{}}
	if err := e.bootstrap(); err != nil {
		return nil, err
	}
	e.prepare()
	if err := e.initShards(); err != nil {
		return nil, err
	}
	if err := e.initTextIndex(); err != nil {
		return nil, err
	}
	return e, nil
}

// DB exposes the underlying SQL database (tests and persistence).
func (e *Engine) DB() *sql.DB { return e.db }

// Schema returns the engine's metadata schema.
func (e *Engine) Schema() *rdf.Schema { return e.schema }

// Options returns the options the engine was created with (replicas reuse
// them when installing a shipped snapshot).
func (e *Engine) Options() Options { return e.opts }

// Stats returns a consistent copy of the engine's counters. Counters are
// only mutated under the exclusive lock, so the shared lock guarantees the
// copy does not tear against a concurrent registration.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.stats
}

// ResetStats zeroes the counters (between benchmark phases).
func (e *Engine) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = Stats{}
}

// ddl is the engine's relational schema (paper §3.3.4 and Figure 4/7/8/9).
var ddl = []string{
	// All metadata atoms ever registered: the MDP's database (RDF mapped to
	// tables per Florescu/Kossmann [14]). num_value is the typed numeric
	// shadow of value (NULL when the lexical does not parse as a float); it
	// backs the ordered (class, property, num_value) index so numeric
	// comparisons run as range scans instead of CAST-reconverting scans.
	`CREATE TABLE Statements (
		uri_reference TEXT NOT NULL,
		class TEXT NOT NULL,
		property TEXT NOT NULL,
		value TEXT NOT NULL,
		num_value FLOAT,
		is_ref BOOL NOT NULL
	)`,
	`CREATE INDEX idx_stmt_uri ON Statements (uri_reference, property)`,
	`CREATE INDEX idx_stmt_cpv ON Statements (class, property, value)`,
	`CREATE INDEX idx_stmt_cpn ON Statements (class, property, num_value)`,
	`CREATE INDEX idx_stmt_value ON Statements (value)`,

	// Resource catalog: which document owns each resource.
	`CREATE TABLE Resources (
		uri_reference TEXT PRIMARY KEY,
		doc_uri TEXT NOT NULL,
		class TEXT NOT NULL
	)`,
	`CREATE INDEX idx_res_doc ON Resources (doc_uri)`,
	`CREATE INDEX idx_res_class ON Resources (class)`,

	// Registered documents (serialized), for re-registration diffs.
	`CREATE TABLE Documents (
		uri TEXT PRIMARY KEY,
		content TEXT NOT NULL
	)`,

	// Atomic rules (paper Figure 7). kind: 'T' triggering, 'J' join.
	// class is the type of the resources the rule registers.
	`CREATE TABLE AtomicRules (
		rule_id INT PRIMARY KEY,
		kind TEXT NOT NULL,
		class TEXT NOT NULL,
		rule_text TEXT NOT NULL,
		refcount INT NOT NULL
	)`,
	`CREATE UNIQUE INDEX idx_ar_text ON AtomicRules (rule_text) USING HASH`,

	// The global dependency graph (paper §3.3.2): source feeds target.
	// side is 'L' or 'R' (which input of the join rule the source feeds).
	`CREATE TABLE RuleDependencies (
		source_rule INT NOT NULL,
		target_rule INT NOT NULL,
		side TEXT NOT NULL
	)`,
	`CREATE INDEX idx_dep_source ON RuleDependencies (source_rule)`,
	`CREATE INDEX idx_dep_target ON RuleDependencies (target_rule)`,

	// Join rules with their group assignment (paper §3.3.3, Figure 7).
	// left_prop/right_prop empty means the bare resource (its URI).
	`CREATE TABLE JoinRules (
		rule_id INT PRIMARY KEY,
		left_rule INT NOT NULL,
		right_rule INT NOT NULL,
		group_id INT NOT NULL
	)`,
	`CREATE INDEX idx_jr_group ON JoinRules (group_id)`,
	`CREATE INDEX idx_jr_left ON JoinRules (left_rule)`,
	`CREATE INDEX idx_jr_right ON JoinRules (right_rule)`,
	`CREATE INDEX idx_jr_lr ON JoinRules (left_rule, right_rule)`,

	// Deduplicated edges from an input atomic rule to the join-rule groups
	// it feeds, one row per (source rule, side, group). The filter's
	// affected-group collection probes this by source rule, so its cost is
	// proportional to the number of distinct groups a delta feeds — not to
	// the number of join rules sharing those groups (JoinRules holds one
	// row per rule; a shared triggering rule can feed tens of thousands).
	`CREATE TABLE GroupFeeds (source_rule INT NOT NULL, side TEXT NOT NULL, group_id INT NOT NULL)`,
	`CREATE UNIQUE INDEX idx_gf_pk ON GroupFeeds (source_rule, side, group_id)`,
	`CREATE INDEX idx_gf_group ON GroupFeeds (group_id)`,

	// Rule groups: the shared where-part of equally shaped join rules.
	`CREATE TABLE RuleGroups (
		group_id INT PRIMARY KEY,
		left_class TEXT NOT NULL,
		left_prop TEXT NOT NULL,
		op TEXT NOT NULL,
		right_prop TEXT NOT NULL,
		right_class TEXT NOT NULL,
		register_side TEXT NOT NULL,
		is_self BOOL NOT NULL,
		group_key TEXT NOT NULL
	)`,
	`CREATE UNIQUE INDEX idx_rg_key ON RuleGroups (group_key) USING HASH`,

	// Triggering-rule filter tables (paper §3.3.4, Figure 8). One table per
	// operator. The paper stores numeric constants as strings and
	// reconverts them at join time via CAST; the numeric tables
	// (EQN/NEN/LT/LE/GT/GE) additionally keep the parsed constant in
	// num_value, and their ordered (class, property, num_value) indexes let
	// a document atom resolve its matching rules with a point lookup (EQN)
	// or range scan (LT/LE/GT/GE) — O(log R + matches) instead of a
	// Θ(rule base) scan. The string column stays authoritative for rule
	// texts and the CAST ablation (Options.DisableTypedIndexes).
	`CREATE TABLE FilterRulesANY (rule_id INT NOT NULL, class TEXT NOT NULL)`,
	`CREATE INDEX idx_fr_any ON FilterRulesANY (class)`,
	`CREATE TABLE FilterRulesEQ (rule_id INT NOT NULL, class TEXT NOT NULL, property TEXT NOT NULL, value TEXT NOT NULL)`,
	`CREATE INDEX idx_fr_eq ON FilterRulesEQ (class, property, value)`,
	`CREATE TABLE FilterRulesEQN (rule_id INT NOT NULL, class TEXT NOT NULL, property TEXT NOT NULL, value TEXT NOT NULL, num_value FLOAT)`,
	`CREATE INDEX idx_fr_eqn ON FilterRulesEQN (class, property, num_value)`,
	`CREATE TABLE FilterRulesNE (rule_id INT NOT NULL, class TEXT NOT NULL, property TEXT NOT NULL, value TEXT NOT NULL)`,
	`CREATE INDEX idx_fr_ne ON FilterRulesNE (class, property)`,
	`CREATE TABLE FilterRulesNEN (rule_id INT NOT NULL, class TEXT NOT NULL, property TEXT NOT NULL, value TEXT NOT NULL, num_value FLOAT)`,
	`CREATE INDEX idx_fr_nen ON FilterRulesNEN (class, property, num_value)`,
	`CREATE TABLE FilterRulesCON (rule_id INT NOT NULL, class TEXT NOT NULL, property TEXT NOT NULL, value TEXT NOT NULL)`,
	`CREATE INDEX idx_fr_con ON FilterRulesCON (class, property)`,
	`CREATE TABLE FilterRulesLT (rule_id INT NOT NULL, class TEXT NOT NULL, property TEXT NOT NULL, value TEXT NOT NULL, num_value FLOAT)`,
	`CREATE INDEX idx_fr_lt ON FilterRulesLT (class, property, num_value)`,
	`CREATE TABLE FilterRulesLE (rule_id INT NOT NULL, class TEXT NOT NULL, property TEXT NOT NULL, value TEXT NOT NULL, num_value FLOAT)`,
	`CREATE INDEX idx_fr_le ON FilterRulesLE (class, property, num_value)`,
	`CREATE TABLE FilterRulesGT (rule_id INT NOT NULL, class TEXT NOT NULL, property TEXT NOT NULL, value TEXT NOT NULL, num_value FLOAT)`,
	`CREATE INDEX idx_fr_gt ON FilterRulesGT (class, property, num_value)`,
	`CREATE TABLE FilterRulesGE (rule_id INT NOT NULL, class TEXT NOT NULL, property TEXT NOT NULL, value TEXT NOT NULL, num_value FLOAT)`,
	`CREATE INDEX idx_fr_ge ON FilterRulesGE (class, property, num_value)`,

	// Materialized results of every atomic rule (paper §3.4).
	`CREATE TABLE RuleResults (rule_id INT NOT NULL, uri_reference TEXT NOT NULL)`,
	`CREATE UNIQUE INDEX idx_rr_pk ON RuleResults (rule_id, uri_reference)`,
	`CREATE INDEX idx_rr_rule ON RuleResults (rule_id)`,
	`CREATE INDEX idx_rr_uri ON RuleResults (uri_reference)`,

	// Transient per-run input atoms (paper Figure 4). num_value mirrors
	// Statements.num_value for the typed triggering joins.
	`CREATE TABLE FilterData (
		uri_reference TEXT NOT NULL,
		class TEXT NOT NULL,
		property TEXT NOT NULL,
		value TEXT NOT NULL,
		num_value FLOAT,
		is_ref BOOL NOT NULL
	)`,
	`CREATE INDEX idx_fd_cp ON FilterData (class, property)`,
	`CREATE INDEX idx_fd_uri ON FilterData (uri_reference)`,

	// Transient per-iteration results (paper Figure 9).
	`CREATE TABLE ResultObjects (uri_reference TEXT NOT NULL, rule_id INT NOT NULL)`,
	`CREATE INDEX idx_ro_rule ON ResultObjects (rule_id)`,

	// Subscriptions: one subscription per registered rule per subscriber;
	// OR-splitting can give a subscription several end rules.
	`CREATE TABLE Subscriptions (
		sub_id INT PRIMARY KEY,
		subscriber TEXT NOT NULL,
		rule_text TEXT NOT NULL
	)`,
	`CREATE INDEX idx_sub_subscriber ON Subscriptions (subscriber)`,
	`CREATE TABLE SubscriptionEndRules (sub_id INT NOT NULL, end_rule INT NOT NULL)`,
	`CREATE INDEX idx_ser_end ON SubscriptionEndRules (end_rule)`,
	`CREATE INDEX idx_ser_sub ON SubscriptionEndRules (sub_id)`,
	// Every atomic rule interned on behalf of a subscription (including
	// duplicates), for refcount release on unsubscribe.
	`CREATE TABLE SubscriptionAtomicRules (sub_id INT NOT NULL, rule_id INT NOT NULL)`,
	`CREATE INDEX idx_sar_sub ON SubscriptionAtomicRules (sub_id)`,
}

func (e *Engine) bootstrap() error {
	for _, stmt := range ddl {
		if _, err := e.db.Exec(stmt); err != nil {
			return fmt.Errorf("core: bootstrap: %w", err)
		}
	}
	return nil
}

func (e *Engine) prepare() {
	p := &e.prep
	p.insStatement = e.db.MustPrepare(
		`INSERT INTO Statements (uri_reference, class, property, value, num_value, is_ref) VALUES (?, ?, ?, ?, ?, ?)`)
	p.delStatements = e.db.MustPrepare(`DELETE FROM Statements WHERE uri_reference = ?`)
	p.insResource = e.db.MustPrepare(
		`INSERT INTO Resources (uri_reference, doc_uri, class) VALUES (?, ?, ?)`)
	p.delResource = e.db.MustPrepare(`DELETE FROM Resources WHERE uri_reference = ?`)
	p.insFilterData = e.db.MustPrepare(
		`INSERT INTO FilterData (uri_reference, class, property, value, num_value, is_ref) VALUES (?, ?, ?, ?, ?, ?)`)
	p.clearFilter = e.db.MustPrepare(`DELETE FROM FilterData`)
	p.stmtsOfURI = e.db.MustPrepare(
		`SELECT uri_reference, class, property, value, is_ref FROM Statements WHERE uri_reference = ?`)

	// Triggering-rule determination (paper §3.4, "Determination of Affected
	// Triggering Rules"): FilterData joined against each filter table. The
	// texts come from trigQueryTexts (shard.go) so the per-shard sections
	// compile exactly the same plans.
	for i, text := range trigQueryTexts(e.opts.DisableTypedIndexes) {
		p.trig[i] = e.db.MustPrepare(text)
	}

	p.resultHas = e.db.MustPrepare(
		`SELECT rule_id FROM RuleResults WHERE rule_id = ? AND uri_reference = ? LIMIT 1`)
	p.resultIns = e.db.MustPrepare(
		`INSERT INTO RuleResults (rule_id, uri_reference) VALUES (?, ?)`)
	p.resultDel = e.db.MustPrepare(
		`DELETE FROM RuleResults WHERE rule_id = ? AND uri_reference = ?`)
	p.resultObjIns = e.db.MustPrepare(
		`INSERT INTO ResultObjects (uri_reference, rule_id) VALUES (?, ?)`)
	p.subsOfEndRule = e.db.MustPrepare(`
		SELECT s.sub_id, s.subscriber FROM SubscriptionEndRules ser, Subscriptions s
		WHERE ser.end_rule = ? AND s.sub_id = ser.sub_id`)
	p.strongRefsTo = e.db.MustPrepare(`
		SELECT uri_reference, class, property FROM Statements
		WHERE property != '` + rdf.SubjectProperty + `' AND is_ref = TRUE AND value = ?`)
	p.resourceClass = e.db.MustPrepare(
		`SELECT class, doc_uri FROM Resources WHERE uri_reference = ?`)
}

// scalar counts for introspection and tests.
func (e *Engine) count(table string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rows, err := e.db.Query(`SELECT COUNT(*) FROM ` + table)
	if err != nil {
		return -1
	}
	v, err := rows.Scalar()
	if err != nil {
		return -1
	}
	return int(v.Int)
}

// AtomicRuleCount returns the number of atomic rules in the engine.
func (e *Engine) AtomicRuleCount() int { return e.count("AtomicRules") }

// RuleGroupCount returns the number of join-rule groups.
func (e *Engine) RuleGroupCount() int { return e.count("RuleGroups") }

// StatementCount returns the number of stored metadata atoms.
func (e *Engine) StatementCount() int { return e.count("Statements") }

// ResourceCount returns the number of registered resources.
func (e *Engine) ResourceCount() int { return e.count("Resources") }
