package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"mdv/internal/rdf"
)

// Differential tests for partition-parallel triggering: a sharded engine
// must be observationally identical to the serial ablation — same publish
// sets (groups, changesets, member credits, byte for byte in the engine's
// deterministic order), same materialized matches, same filter-table state,
// same work counters, same snapshots — over randomized mixes of register,
// rewrite, delete, subscribe, and unsubscribe across every rule shape the
// decomposition produces (ANY, OID, EQ/NE/CON, numeric comparisons, PATH,
// JOIN, OR-splits). The serial-equivalence argument lives in shard.go; this
// test is its enforcement.

var (
	shardDiffHosts  = []string{"pirates.uni-passau.de", "mdv.uni-passau.de", "a.example.org", "007", "grün.uni-passau.de", "PASSAU.DE"}
	shardDiffPorts  = []string{"80", "5874", "007", "0", "-3", "65535"}
	shardDiffInts   = []string{"0", "7", "007", "64", "92", "600", "1024"}
	shardDiffThemes = []string{"astronomy", "x-ray", "abc"}
	shardDiffOps    = []string{"=", "!=", "<", "<=", ">", ">="}
)

func shardDiffOp(rng *rand.Rand) string {
	return shardDiffOps[rng.Intn(len(shardDiffOps))]
}

// shardDiffRule draws one rule over the paper schema, covering all ten
// operator tables plus the join, path, and OR-split shapes. The contains
// cases deliberately include the empty constant (matches everything),
// multi-byte UTF-8 constants, and the bare-variable form `c contains 'x'`
// (matches the URIref; routed as (class, rdf.SubjectProperty) like the
// subject atoms that trigger it) — the text-index edge semantics.
func shardDiffRule(rng *rand.Rand) string {
	op := shardDiffOp(rng)
	switch rng.Intn(13) {
	case 0: // ANY (class-only)
		return `search CycleProvider c register c`
	case 1: // OID point rule
		return fmt.Sprintf(`search CycleProvider c register c where c = 'doc%d.rdf#host'`, rng.Intn(10))
	case 2: // string equality
		return fmt.Sprintf(`search CycleProvider c register c where c.serverHost = '%s'`,
			shardDiffHosts[rng.Intn(len(shardDiffHosts))])
	case 3: // string inequality
		return fmt.Sprintf(`search CycleProvider c register c where c.serverHost != '%s'`,
			shardDiffHosts[rng.Intn(len(shardDiffHosts))])
	case 4: // contains
		return fmt.Sprintf(`search CycleProvider c register c where c.serverHost contains '%s'`,
			[]string{"passau", "00", "a", "example", "", "ü", "grün", "PASSAU"}[rng.Intn(8)])
	case 12: // bare-variable contains (matches the URIref)
		return fmt.Sprintf(`search CycleProvider c register c where c contains '%s'`,
			[]string{"doc", "rdf#host", "", "7"}[rng.Intn(4)])
	case 5: // numeric comparison on an integer property
		return fmt.Sprintf(`search CycleProvider c register c where c.serverPort %s %d`, op, rng.Intn(6000))
	case 6: // numeric comparison on the other class
		return fmt.Sprintf(`search ServerInformation s register s where s.memory %s %d`, op, rng.Intn(128))
	case 7: // PATH through a strong reference
		return fmt.Sprintf(`search CycleProvider c register c where c.serverInformation.cpu %s %d`, op, rng.Intn(700))
	case 8: // explicit reference join
		return fmt.Sprintf(
			`search CycleProvider c, ServerInformation s register s where c.serverInformation = s and c.serverPort %s %d`,
			op, rng.Intn(6000))
	case 9: // OR-split: several end rules per subscription
		return fmt.Sprintf(
			`search CycleProvider c register c where c.serverPort = %d or c.serverHost contains 'uni'`, rng.Intn(6000))
	case 10: // conjunction of two triggering rules
		return fmt.Sprintf(
			`search CycleProvider c register c where c.serverHost contains 'passau' and c.serverPort %s %d`,
			op, rng.Intn(6000))
	default: // set-valued property on a third class
		return fmt.Sprintf(`search DataProvider d register d where d.theme = '%s'`,
			shardDiffThemes[rng.Intn(len(shardDiffThemes))])
	}
}

// shardDiffDoc draws one document: a CycleProvider, usually with its
// ServerInformation (sometimes referenced cross-document or dangling), and
// occasionally a DataProvider with set-valued themes.
func shardDiffDoc(rng *rand.Rand, i int) *rdf.Document {
	doc := rdf.NewDocument(fmt.Sprintf("doc%d.rdf", i))
	host := doc.NewResource("host", "CycleProvider")
	host.Add("serverHost", rdf.Lit(shardDiffHosts[rng.Intn(len(shardDiffHosts))]))
	host.Add("serverPort", rdf.Lit(shardDiffPorts[rng.Intn(len(shardDiffPorts))]))
	if rng.Intn(2) == 0 {
		host.Add("synthValue", rdf.Lit(shardDiffInts[rng.Intn(len(shardDiffInts))]))
	}
	switch rng.Intn(4) {
	case 0, 1: // local info resource
		host.Add("serverInformation", rdf.Ref(doc.URI+"#info"))
		info := doc.NewResource("info", "ServerInformation")
		info.Add("memory", rdf.Lit(shardDiffInts[rng.Intn(len(shardDiffInts))]))
		info.Add("cpu", rdf.Lit(shardDiffInts[rng.Intn(len(shardDiffInts))]))
	case 2: // cross-document (possibly dangling) reference
		host.Add("serverInformation", rdf.Ref(fmt.Sprintf("doc%d.rdf#info", rng.Intn(10))))
	}
	if rng.Intn(3) == 0 {
		dp := doc.NewResource("dp", "DataProvider")
		for _, th := range shardDiffThemes[:1+rng.Intn(len(shardDiffThemes))] {
			dp.Add("theme", rdf.Lit(th))
		}
		dp.Add("host", rdf.Ref(doc.URI+"#host"))
	}
	return doc
}

// renderChangeset writes a changeset verbatim — preserving the engine's
// emission order, so the comparison asserts determinism, not just set
// equality. Only MemberCredits needs sorting (it is a map).
func renderChangeset(b *strings.Builder, cs *Changeset) {
	if cs == nil {
		b.WriteString("  <nil>\n")
		return
	}
	for _, u := range cs.Upserts {
		fmt.Fprintf(b, "  up %s [%s] subs=%v", u.Resource.URIRef, u.Resource.Class, u.SubIDs)
		for _, p := range u.Resource.Props {
			fmt.Fprintf(b, " %s=%s", p.Name, p.Value.String())
		}
		for _, c := range u.Closure {
			fmt.Fprintf(b, " closure=%s", c.URIRef)
		}
		b.WriteByte('\n')
	}
	for _, r := range cs.Removals {
		fmt.Fprintf(b, "  rm %s sub=%d\n", r.URIRef, r.SubID)
	}
	for _, c := range cs.ClosureUpserts {
		fmt.Fprintf(b, "  closure-up %s\n", c.URIRef)
	}
	for _, f := range cs.ForcedDeletes {
		fmt.Fprintf(b, "  forced %s\n", f)
	}
	if cs.MemberCredits != nil {
		members := make([]string, 0, len(cs.MemberCredits))
		for m := range cs.MemberCredits {
			members = append(members, m)
		}
		sort.Strings(members)
		for _, m := range members {
			fmt.Fprintf(b, "  credits %s=%v\n", m, cs.MemberCredits[m])
		}
	}
}

// renderPublishSet canonicalizes a publish set: the delivery groups in the
// engine's order, each changeset verbatim.
func renderPublishSet(ps *PublishSet) string {
	if ps == nil {
		return "<nil>"
	}
	var b strings.Builder
	for _, g := range ps.GroupList() {
		fmt.Fprintf(&b, "group %v\n", g.Members)
		renderChangeset(&b, g.Changeset)
	}
	return b.String()
}

// checkShardMirror asserts the derived shard state: the union of every
// shard's filter tables equals the canonical tables row for row, each row
// lives on exactly the shard the hash routes it to, and no shard leaks
// FilterData scratch between runs.
func checkShardMirror(t *testing.T, e *Engine) {
	t.Helper()
	if e.shards == nil {
		return
	}
	n := len(e.shards.shards)
	for ti, table := range trigTableNames {
		cols := "rule_id, class, property, value"
		switch {
		case table == "FilterRulesANY":
			cols = "rule_id, class"
		case numericFilterTable(table):
			cols += ", num_value"
		}
		canon, err := e.db.Query(`SELECT ` + cols + ` FROM ` + table)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]string, 0, canon.Len())
		for _, r := range canon.Data {
			want = append(want, fmt.Sprintf("%v", r))
		}
		var got []string
		for si, sh := range e.shards.shards {
			rows, err := sh.db.Query(`SELECT ` + cols + ` FROM ` + table)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows.Data {
				prop := rdf.SubjectProperty
				if ti != 0 {
					prop = r[2].Str
				}
				if home := shardIndexFor(n, r[1].Str, prop); home != si {
					t.Errorf("%s row %v found on shard %d, hash routes it to %d", table, r, si, home)
				}
				got = append(got, fmt.Sprintf("%v", r))
			}
		}
		sort.Strings(want)
		sort.Strings(got)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("shard union of %s diverged from canonical table:\n got %v\nwant %v", table, got, want)
		}
	}
	for si, sh := range e.shards.shards {
		rows, err := sh.db.Query(`SELECT uri_reference FROM FilterData`)
		if err != nil {
			t.Fatal(err)
		}
		if rows.Len() != 0 {
			t.Errorf("shard %d leaked %d FilterData rows after the run", si, rows.Len())
		}
	}
}

// maskShardStats clears the counters that intentionally differ between the
// sharded engine and the serial ablation; every other counter must match
// exactly (the partition preserves the triggering result multiset).
func maskShardStats(s Stats) Stats {
	s.ShardedFilterRuns = 0
	s.ShardSectionsRun = 0
	return s
}

// TestShardedTriggeringDifferential drives a sharded engine and the serial
// ablation through identical randomized workloads and requires identical
// observable behavior at every step.
func TestShardedTriggeringDifferential(t *testing.T) {
	seeds := []int64{3, 17, 271, 4242, 90001}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, nShards := range []int{1, 3, 8} {
		for _, seed := range seeds {
			nShards, seed := nShards, seed
			t.Run(fmt.Sprintf("shards=%d/seed=%d", nShards, seed), func(t *testing.T) {
				runShardDifferential(t, nShards, seed)
			})
		}
	}
}

func runShardDifferential(t *testing.T, nShards int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	serial, err := NewEngineWithOptions(paperSchema(),
		Options{Shards: nShards, DisableShardedTriggering: true})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewEngineWithOptions(paperSchema(), Options{Shards: nShards})
	if err != nil {
		t.Fatal(err)
	}
	if want := nShards; nShards > 1 && sharded.ShardCount() != want {
		t.Fatalf("ShardCount = %d, want %d", sharded.ShardCount(), want)
	}
	if serial.ShardCount() != 1 {
		t.Fatalf("ablated engine reports %d shards, want 1", serial.ShardCount())
	}

	live := map[string]bool{} // registered document URIs
	var subs []int64          // live subscription IDs (identical on both)
	subscribers := []string{"lmr1", "lmr2", "lmr3"}

	pickDoc := func() string {
		uris := make([]string, 0, len(live))
		for u := range live {
			uris = append(uris, u)
		}
		sort.Strings(uris)
		return uris[rng.Intn(len(uris))]
	}
	check := func(step int, what string) {
		t.Helper()
		if gs, gh := maskShardStats(serial.Stats()), maskShardStats(sharded.Stats()); gs != gh {
			t.Fatalf("step %d (%s): stats diverged\n serial  %+v\n sharded %+v", step, what, gs, gh)
		}
		ds, dh := dumpFilterState(t, serial), dumpFilterState(t, sharded)
		if ds != dh {
			t.Fatalf("step %d (%s): filter state diverged:\n%s", step, what, diffDumps(ds, dh))
		}
		checkShardMirror(t, sharded)
	}

	// Seed subscriptions so the first registrations already trigger.
	for i := 0; i < 4; i++ {
		rule := shardDiffRule(rng)
		who := subscribers[rng.Intn(len(subscribers))]
		ids, css, err := serial.Subscribe(who, rule)
		if err != nil {
			continue // some drawn rules are invalid for the schema; skip in both
		}
		idh, csh, err := sharded.Subscribe(who, rule)
		if err != nil {
			t.Fatalf("sharded rejected rule the serial engine accepted %q: %v", rule, err)
		}
		if ids != idh {
			t.Fatalf("subscription ids diverged: %d vs %d", ids, idh)
		}
		var bs, bh strings.Builder
		renderChangeset(&bs, css)
		renderChangeset(&bh, csh)
		if bs.String() != bh.String() {
			t.Fatalf("initial changeset for %q diverged:\n serial:\n%s sharded:\n%s", rule, bs.String(), bh.String())
		}
		subs = append(subs, ids)
	}

	const steps = 30
	for step := 0; step < steps; step++ {
		switch r := rng.Intn(10); {
		case r < 4: // register a batch of new or rewritten documents
			k := 1 + rng.Intn(3)
			var docs []*rdf.Document
			inBatch := map[string]bool{}
			for i := 0; i < k; i++ {
				d := shardDiffDoc(rng, rng.Intn(10))
				if inBatch[d.URI] {
					continue // a batch may not carry the same document twice
				}
				inBatch[d.URI] = true
				live[d.URI] = true
				docs = append(docs, d)
			}
			pss, err := serial.RegisterDocuments(docs)
			if err != nil {
				t.Fatalf("step %d: serial register: %v", step, err)
			}
			psh, err := sharded.RegisterDocuments(docs)
			if err != nil {
				t.Fatalf("step %d: sharded register: %v", step, err)
			}
			if rs, rh := renderPublishSet(pss), renderPublishSet(psh); rs != rh {
				t.Fatalf("step %d: publish sets diverged:\n serial:\n%s\n sharded:\n%s", step, rs, rh)
			}
		case r < 6 && len(live) > 0: // delete a document
			uri := pickDoc()
			delete(live, uri)
			pss, err := serial.DeleteDocument(uri)
			if err != nil {
				t.Fatalf("step %d: serial delete: %v", step, err)
			}
			psh, err := sharded.DeleteDocument(uri)
			if err != nil {
				t.Fatalf("step %d: sharded delete: %v", step, err)
			}
			if rs, rh := renderPublishSet(pss), renderPublishSet(psh); rs != rh {
				t.Fatalf("step %d: delete publish sets diverged:\n serial:\n%s\n sharded:\n%s", step, rs, rh)
			}
		case r < 8: // subscribe a fresh rule (exercises the shard dual-write)
			rule := shardDiffRule(rng)
			who := subscribers[rng.Intn(len(subscribers))]
			ids, css, err := serial.Subscribe(who, rule)
			if err != nil {
				continue
			}
			idh, csh, err := sharded.Subscribe(who, rule)
			if err != nil {
				t.Fatalf("step %d: sharded rejected %q: %v", step, rule, err)
			}
			if ids != idh {
				t.Fatalf("step %d: subscription ids diverged: %d vs %d", step, ids, idh)
			}
			var bs, bh strings.Builder
			renderChangeset(&bs, css)
			renderChangeset(&bh, csh)
			if bs.String() != bh.String() {
				t.Fatalf("step %d: initial changeset diverged for %q", step, rule)
			}
			subs = append(subs, ids)
		default: // unsubscribe (exercises the all-shard rule sweep)
			if len(subs) == 0 {
				continue
			}
			i := rng.Intn(len(subs))
			id := subs[i]
			subs = append(subs[:i], subs[i+1:]...)
			if err := serial.Unsubscribe(id); err != nil {
				t.Fatalf("step %d: serial unsubscribe: %v", step, err)
			}
			if err := sharded.Unsubscribe(id); err != nil {
				t.Fatalf("step %d: sharded unsubscribe: %v", step, err)
			}
		}
		if step%5 == 4 {
			check(step, "periodic")
		}
	}
	check(steps, "final")

	// Every live subscription materializes the same matches.
	for _, id := range subs {
		ms, err := serial.MatchingResources(id)
		if err != nil {
			t.Fatal(err)
		}
		mh, err := sharded.MatchingResources(id)
		if err != nil {
			t.Fatal(err)
		}
		us := make([]string, len(ms))
		for i, r := range ms {
			us[i] = r.URIRef
		}
		uh := make([]string, len(mh))
		for i, r := range mh {
			uh[i] = r.URIRef
		}
		if fmt.Sprint(us) != fmt.Sprint(uh) {
			t.Errorf("sub %d matches diverged:\n serial  %v\n sharded %v", id, us, uh)
		}
	}

	// Snapshots carry no shard state and saving is deterministic: saving the
	// sharded engine twice yields identical bytes. (The serial engine's
	// snapshot is logically equivalent but not byte-identical — physical row
	// order in RuleResults follows match-insertion order, which is
	// operator-major serially and shard-major sharded; the reload check
	// below proves the equivalence.)
	var snapH, snapH2 bytes.Buffer
	if err := sharded.Save(&snapH); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Save(&snapH2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapH.Bytes(), snapH2.Bytes()) {
		t.Error("saving the same sharded engine twice produced different bytes")
	}

	// A snapshot loaded with sharding enabled rebuilds the shard mirror and
	// keeps producing identical publish sets.
	reloaded, err := LoadWithOptions(bytes.NewReader(snapH.Bytes()), paperSchema(), Options{Shards: nShards})
	if err != nil {
		t.Fatal(err)
	}
	checkShardMirror(t, reloaded)
	probe := shardDiffDoc(rng, 11)
	pss, err := serial.RegisterDocument(probe)
	if err != nil {
		t.Fatal(err)
	}
	psr, err := reloaded.RegisterDocument(probe)
	if err != nil {
		t.Fatal(err)
	}
	if rs, rr := renderPublishSet(pss), renderPublishSet(psr); rs != rr {
		t.Errorf("reloaded sharded engine diverged on the probe publish:\n serial:\n%s\n reloaded:\n%s", rs, rr)
	}
}

// TestShardedEngineConcurrentPublishesAndReaders hammers one sharded engine
// with parallel writers and readers under -race: the shard fan-out must not
// introduce data races against the engine's RW-locked read surface, and the
// final state must equal a serial engine fed the same final documents.
func TestShardedEngineConcurrentPublishesAndReaders(t *testing.T) {
	e, err := NewEngineWithOptions(paperSchema(), Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	control, err := NewEngineWithOptions(paperSchema(),
		Options{Shards: 4, DisableShardedTriggering: true})
	if err != nil {
		t.Fatal(err)
	}
	rules := []string{
		`search CycleProvider c register c`,
		`search CycleProvider c register c where c.serverPort >= 0`,
		`search CycleProvider c register c where c.serverHost contains 'example'`,
		`search ServerInformation s register s where s.memory > 10`,
		`search CycleProvider c, ServerInformation s register s where c.serverInformation = s and c.serverPort > 0`,
	}
	var subs []int64
	for _, r := range rules {
		id, _, err := e.Subscribe("lmr1", r)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := control.Subscribe("lmr1", r); err != nil {
			t.Fatal(err)
		}
		subs = append(subs, id)
	}

	const writers = 4
	const docsPerWriter = 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsPerWriter; i++ {
				doc := rdf.NewDocument(fmt.Sprintf("w%d-%d.rdf", w, i))
				cp := doc.NewResource("cp", "CycleProvider")
				cp.Add("serverHost", rdf.Lit("h.example.org"))
				cp.Add("serverPort", rdf.Lit(fmt.Sprint(i+1)))
				cp.Add("serverInformation", rdf.Ref(doc.URI+"#si"))
				si := doc.NewResource("si", "ServerInformation")
				si.Add("memory", rdf.Lit(fmt.Sprint(16*(i+1))))
				si.Add("cpu", rdf.Lit("600"))
				if _, err := e.RegisterDocument(doc); err != nil {
					t.Errorf("register: %v", err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.Browse("CycleProvider", "example"); err != nil {
					t.Errorf("browse: %v", err)
					return
				}
				st := e.Stats()
				if st.ShardSectionsRun < st.ShardedFilterRuns {
					t.Errorf("stats torn: %d sections over %d sharded runs", st.ShardSectionsRun, st.ShardedFilterRuns)
					return
				}
				if _, err := e.MatchingResources(subs[0]); err != nil {
					t.Errorf("matches: %v", err)
					return
				}
				if _, err := e.Subscriptions(); err != nil {
					t.Errorf("subscriptions: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	// Feed the control engine the same documents serially; every
	// subscription must hold identical matches and the shard mirror must be
	// intact after the concurrent episode.
	for w := 0; w < writers; w++ {
		for i := 0; i < docsPerWriter; i++ {
			doc := rdf.NewDocument(fmt.Sprintf("w%d-%d.rdf", w, i))
			cp := doc.NewResource("cp", "CycleProvider")
			cp.Add("serverHost", rdf.Lit("h.example.org"))
			cp.Add("serverPort", rdf.Lit(fmt.Sprint(i+1)))
			cp.Add("serverInformation", rdf.Ref(doc.URI+"#si"))
			si := doc.NewResource("si", "ServerInformation")
			si.Add("memory", rdf.Lit(fmt.Sprint(16*(i+1))))
			si.Add("cpu", rdf.Lit("600"))
			if _, err := control.RegisterDocument(doc); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, id := range subs {
		got, err := e.MatchingResources(id)
		if err != nil {
			t.Fatal(err)
		}
		want, err := control.MatchingResources(id)
		if err != nil {
			t.Fatal(err)
		}
		gu := make([]string, len(got))
		for i, r := range got {
			gu[i] = r.URIRef
		}
		wu := make([]string, len(want))
		for i, r := range want {
			wu[i] = r.URIRef
		}
		if fmt.Sprint(gu) != fmt.Sprint(wu) {
			t.Errorf("sub %d: concurrent sharded matches %v, serial control %v", id, gu, wu)
		}
	}
	if st := e.Stats(); st.ShardedFilterRuns == 0 {
		t.Error("sharded engine recorded no sharded filter runs")
	}
	checkShardMirror(t, e)
}
