package core

import (
	"fmt"
	"io"

	"mdv/internal/rdb"
	"mdv/internal/rdb/sql"
	"mdv/internal/rdf"
	"mdv/internal/rules"
)

// Save writes a snapshot of the engine's entire state — metadata,
// decomposed rules, materializations, and subscriptions — to w. Named
// rules are persisted through the NamedRules table.
func (e *Engine) Save(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.syncNamedRulesTable(); err != nil {
		return err
	}
	return e.db.Raw().Save(w)
}

// syncNamedRulesTable mirrors the in-memory named-rule catalog into its
// table so snapshots carry it.
func (e *Engine) syncNamedRulesTable() error {
	if !e.db.Raw().HasTable("NamedRules") {
		if _, err := e.db.Exec(`CREATE TABLE NamedRules (name TEXT PRIMARY KEY, rule_text TEXT NOT NULL)`); err != nil {
			return err
		}
	}
	if _, err := e.db.Exec(`DELETE FROM NamedRules`); err != nil {
		return err
	}
	for name, nr := range e.named {
		if _, err := e.db.Exec(`INSERT INTO NamedRules (name, rule_text) VALUES (?, ?)`,
			rdb.NewText(name), rdb.NewText(nr.Text())); err != nil {
			return err
		}
	}
	return nil
}

// Load restores an engine from a snapshot previously written by Save. The
// schema must be the one the snapshot was created with (the snapshot does
// not embed it; schemas are shared federation-wide configuration).
func Load(r io.Reader, schema *rdf.Schema) (*Engine, error) {
	return LoadWithOptions(r, schema, Options{})
}

// LoadWithOptions is Load with explicit engine options. Shard state is
// derived, never persisted: snapshots are identical regardless of the shard
// configuration of the engine that wrote them, and the loaded engine
// rebuilds its shard map from the canonical filter tables.
func LoadWithOptions(r io.Reader, schema *rdf.Schema, opts Options) (*Engine, error) {
	raw, err := rdb.Load(r)
	if err != nil {
		return nil, err
	}
	e := &Engine{db: sql.NewDB(raw), schema: schema, opts: opts, named: map[string]*rules.NormalRule{}}
	// The snapshot must contain the engine's tables.
	for _, table := range []string{"Statements", "AtomicRules", "Subscriptions"} {
		if !raw.HasTable(table) {
			return nil, fmt.Errorf("core: snapshot is not an engine snapshot (missing %s)", table)
		}
	}
	e.prepare()
	// Restore the id counters from the stored maxima.
	var restoreErr error
	maxOf := func(q string) int64 {
		rows, err := e.db.Query(q)
		if err != nil {
			restoreErr = err
			return 0
		}
		v, err := rows.Scalar()
		if err != nil {
			restoreErr = err
			return 0
		}
		if v.IsNull() {
			return 0
		}
		return v.Int
	}
	e.nextRuleID = maxOf(`SELECT MAX(rule_id) FROM AtomicRules`)
	e.nextSubID = maxOf(`SELECT MAX(sub_id) FROM Subscriptions`)
	e.nextGroupID = maxOf(`SELECT MAX(group_id) FROM RuleGroups`)
	if restoreErr != nil {
		return nil, restoreErr
	}
	// Restore named rules.
	if raw.HasTable("NamedRules") {
		rows, err := e.db.Query(`SELECT name, rule_text FROM NamedRules`)
		if err != nil {
			return nil, err
		}
		for _, row := range rows.Data {
			name, text := row[0].Str, row[1].Str
			parsed, err := rules.Parse(text)
			if err != nil {
				return nil, fmt.Errorf("core: snapshot named rule %q: %w", name, err)
			}
			normalized, err := rules.Normalize(parsed, schema, e.resolveNamed)
			if err != nil {
				return nil, fmt.Errorf("core: snapshot named rule %q: %w", name, err)
			}
			if len(normalized) != 1 {
				return nil, fmt.Errorf("core: snapshot named rule %q normalizes to %d rules", name, len(normalized))
			}
			e.named[name] = normalized[0]
		}
	}
	if err := e.initShards(); err != nil {
		return nil, err
	}
	// The text index is derived state, never serialized: rebuild it from the
	// canonical FilterRulesCON rows, like the shard mirrors above.
	if err := e.initTextIndex(); err != nil {
		return nil, err
	}
	return e, nil
}
