package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mdv/internal/rdf"
)

// checkTextMirror asserts the derived text index agrees with the canonical
// FilterRulesCON table entry for entry: every (class, property, constant,
// rule) row is indexed in exactly its cohort, and nothing else is — the
// no-leak contract of the churn test and the differential.
func checkTextMirror(t *testing.T, e *Engine) {
	t.Helper()
	if e.text == nil {
		return
	}
	rows, err := e.db.Query(`SELECT rule_id, class, property, value FROM FilterRulesCON`)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, 0, rows.Len())
	for _, r := range rows.Data {
		want = append(want, fmt.Sprintf("%s|%s|%q|%d", r[1].Str, r[2].Str, r[3].Str, r[0].Int))
	}
	var got []string
	for k, c := range e.text.cohorts {
		if len(c.patterns) == 0 && len(c.empty) == 0 {
			t.Errorf("text index holds empty cohort %+v", k)
		}
		for _, id := range c.empty {
			got = append(got, fmt.Sprintf("%s|%s|%q|%d", k.class, k.property, "", id))
		}
		for p, ids := range c.patterns {
			for _, id := range ids {
				got = append(got, fmt.Sprintf("%s|%s|%q|%d", k.class, k.property, p, id))
			}
		}
	}
	sort.Strings(want)
	sort.Strings(got)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("text index diverged from canonical FilterRulesCON:\n got  %v\n want %v", got, want)
	}
	if e.text.ruleCount() != len(want) {
		t.Errorf("text index ruleCount = %d, canonical rows = %d", e.text.ruleCount(), len(want))
	}
}

// textFuzzFragments compose random patterns and subjects: ASCII, multi-byte
// UTF-8 runes (so constants can split across byte boundaries), and raw
// invalid-UTF-8 bytes (the semantics are byte-wise, not rune-wise).
var textFuzzFragments = []string{
	"a", "b", "0", ".", "ü", "ß", "€", "🚲", "\xc3", "\xbc", "\xff", "de", "pa",
}

func textFuzzString(rng *rand.Rand, frags int) string {
	var b strings.Builder
	for i := 0; i < frags; i++ {
		b.WriteString(textFuzzFragments[rng.Intn(len(textFuzzFragments))])
	}
	return b.String()
}

// TestTextAutomatonMatchesStringsContains fuzzes the Aho-Corasick automaton
// against the strings.Contains ground truth (the SQL CONTAINS baseline) over
// random byte strings, including multi-byte UTF-8 sequences split across
// pattern boundaries and invalid UTF-8.
func TestTextAutomatonMatchesStringsContains(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		patterns := make(map[string][]int64)
		nextID := int64(1)
		for i := 0; i < 1+rng.Intn(8); i++ {
			p := textFuzzString(rng, 1+rng.Intn(4))
			patterns[p] = insertSortedID(patterns[p], nextID)
			nextID++
		}
		a := compileTextAutomaton(patterns)
		for probe := 0; probe < 20; probe++ {
			v := textFuzzString(rng, rng.Intn(8))
			got := dedupeSortedIDs(a.scan(v, nil))
			var want []int64
			for p, ids := range patterns {
				if strings.Contains(v, p) {
					want = append(want, ids...)
				}
			}
			want = dedupeSortedIDs(want)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d: scan(%q) over %v = %v, strings.Contains says %v",
					trial, v, patterns, got, want)
			}
		}
	}
}

// TestTextIndexEdgeSemantics pins the index against the CONTAINS corner
// cases directly: the empty constant matches every cohort value (including
// the empty value), matching is case-sensitive, multi-byte constants match
// byte-wise, and occurrences collapse to one pair per rule.
func TestTextIndexEdgeSemantics(t *testing.T) {
	ti := newTextIndex()
	ti.insert("C", "p", "", 1)    // empty constant
	ti.insert("C", "p", "ü", 2)   // multi-byte
	ti.insert("C", "p", "AB", 3)  // case-sensitive
	ti.insert("C", "p", "aa", 4)  // overlapping occurrences
	ti.insert("C", "q", "zzz", 5) // other cohort
	ti.insert("D", "p", "ü", 6)   // other class, same property
	atom := func(uri, class, prop, value string) preparedAtom {
		return preparedAtom{stmt: rdf.Statement{URIRef: uri, Class: class, Property: prop, Value: value}}
	}
	cases := []struct {
		value string
		want  []int64
	}{
		{"", []int64{1}},       // Contains(s, "") is true even for s == ""
		{"xüx", []int64{1, 2}}, // multi-byte needle inside ASCII
		{"x\xc3x", []int64{1}}, // first byte of ü alone does not match
		{"ab", []int64{1}},     // 'AB' is case-sensitive
		{"AB", []int64{1, 3}},
		{"aaaa", []int64{1, 4}}, // three occurrences, one pair
		{"zzz", []int64{1}},     // 'zzz' lives in cohort (C,q), not (C,p)
	}
	for _, tc := range cases {
		pairs := ti.collect([]preparedAtom{atom("u", "C", "p", tc.value)}, nil)
		got := make([]int64, 0, len(pairs))
		for _, p := range pairs {
			if p.uri != "u" {
				t.Errorf("value %q: pair carries uri %q", tc.value, p.uri)
			}
			got = append(got, p.rule)
		}
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("collect(%q) = %v, want %v", tc.value, got, tc.want)
		}
	}
	// A cohort the atom does not belong to stays silent.
	if pairs := ti.collect([]preparedAtom{atom("u", "E", "p", "üAB")}, nil); len(pairs) != 0 {
		t.Errorf("unknown cohort matched: %v", pairs)
	}
}

// TestTextIndexChurnReleasesDeadRules cycles subscribe → publish →
// unsubscribe with shared constants across subscribers and asserts the text
// index fully releases dead rule constants every cycle — no pattern, cohort,
// or automaton state survives — and that the filter tables return to their
// pre-subscribe bytes (the PR 5 differential, extended to the derived
// index).
func TestTextIndexChurnReleasesDeadRules(t *testing.T) {
	e := newTestEngine(t)
	if e.text == nil {
		t.Fatal("text index should be enabled by default")
	}
	if _, err := e.RegisterDocument(figure1Doc()); err != nil {
		t.Fatal(err)
	}
	before := dumpFilterState(t, e)

	churnRules := []string{
		`search CycleProvider c register c where c.serverHost contains 'passau'`,
		`search CycleProvider c register c where c.serverHost contains ''`,
		`search CycleProvider c register c where c contains 'doc'`,
		`search CycleProvider c register c where c.serverHost contains 'grün'`,
		`search DataProvider d register d where d.theme contains 'astro'`,
		example331,
	}
	for cycle := 0; cycle < 3; cycle++ {
		var ids []int64
		for _, r := range churnRules {
			id, _, err := e.Subscribe("lmr1", r)
			if err != nil {
				t.Fatalf("cycle %d: subscribe %q: %v", cycle, r, err)
			}
			ids = append(ids, id)
		}
		// Shared constants: refcount 2 on the first three contains rules, so
		// the sweep must wait for the second release.
		for _, r := range churnRules[:3] {
			id, _, err := e.Subscribe("lmr2", r)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		checkTextMirror(t, e)
		if e.text.ruleCount() == 0 {
			t.Fatalf("cycle %d: no contains rules indexed", cycle)
		}
		// Publish through the index (compiles the automata) and delete again.
		uri := fmt.Sprintf("churn%d.rdf", cycle)
		doc := rdf.NewDocument(uri)
		host := doc.NewResource("host", "CycleProvider")
		host.Add("serverHost", rdf.Lit("grün.uni-passau.de"))
		host.Add("serverPort", rdf.Lit("80"))
		if _, err := e.RegisterDocument(doc); err != nil {
			t.Fatal(err)
		}
		if e.text.nodeCount() == 0 {
			t.Fatalf("cycle %d: publish compiled no automaton", cycle)
		}
		if _, err := e.DeleteDocument(uri); err != nil {
			t.Fatal(err)
		}
		for i := len(ids) - 1; i >= 0; i-- {
			if err := e.Unsubscribe(ids[i]); err != nil {
				t.Fatalf("cycle %d: unsubscribe: %v", cycle, err)
			}
		}
		if r, c, n := e.text.ruleCount(), len(e.text.cohorts), e.text.nodeCount(); r != 0 || c != 0 || n != 0 {
			t.Fatalf("cycle %d: text index leaked after full unsubscribe: rules=%d cohorts=%d nodes=%d", cycle, r, c, n)
		}
		checkTextMirror(t, e)
	}
	if after := dumpFilterState(t, e); after != before {
		t.Errorf("filter state after churn differs from pre-subscribe state:\n%s", diffDumps(before, after))
	}
}

// TestBrowseSubstringContract locks in the Browse contract documented on
// the method: byte-wise case-sensitive substring over the URI reference OR
// any property value's lexical form (reference targets included), scoped to
// the class; the empty filter matches everything of the class. This is
// deliberately broader than a rule-level `contains`, which tests exactly
// one (class, property) value.
func TestBrowseSubstringContract(t *testing.T) {
	e := newTestEngine(t)
	doc := rdf.NewDocument("browse.rdf")
	host := doc.NewResource("host", "CycleProvider")
	host.Add("serverHost", rdf.Lit("Grün.uni-passau.de"))
	host.Add("serverPort", rdf.Lit("5874"))
	host.Add("serverInformation", rdf.Ref("browse.rdf#info"))
	info := doc.NewResource("info", "ServerInformation")
	info.Add("memory", rdf.Lit("92"))
	info.Add("cpu", rdf.Lit("600"))
	if _, err := e.RegisterDocument(doc); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		class, filter string
		want          []string
	}{
		{"CycleProvider", "", []string{"browse.rdf#host"}},       // empty filter: whole class
		{"CycleProvider", "rdf#ho", []string{"browse.rdf#host"}}, // match via the URI reference
		{"CycleProvider", "Grün", []string{"browse.rdf#host"}},   // match via a property value, multi-byte
		{"CycleProvider", "grün", nil},                           // case-sensitive: no match
		{"CycleProvider", "#info", []string{"browse.rdf#host"}},  // match via a reference target URI
		{"CycleProvider", "5874", []string{"browse.rdf#host"}},   // numeric property's lexical form
		{"CycleProvider", "92", nil},                             // other resource's value: class-scoped
		{"ServerInformation", "rdf#ho", nil},                     // URIRef match is class-scoped too
		{"ServerInformation", "92", []string{"browse.rdf#info"}},
	}
	for _, tc := range cases {
		rs, err := e.Browse(tc.class, tc.filter)
		if err != nil {
			t.Fatalf("Browse(%q, %q): %v", tc.class, tc.filter, err)
		}
		got := make([]string, 0, len(rs))
		for _, r := range rs {
			got = append(got, r.URIRef)
		}
		if fmt.Sprint(got) != fmt.Sprint([]string(tc.want)) {
			t.Errorf("Browse(%q, %q) = %v, want %v", tc.class, tc.filter, got, tc.want)
		}
	}
}
