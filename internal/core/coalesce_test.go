package core

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"mdv/internal/rdf"
)

// memRule pairs with memDoc: PATH rule n matches the document whose
// ServerInformation.memory is n.
func memRule(n int) string {
	return fmt.Sprintf(`search CycleProvider c register c where c.serverInformation.memory = %d`, n)
}

func memDoc(i, port int) *rdf.Document {
	doc := rdf.NewDocument(fmt.Sprintf("m%d.rdf", i))
	host := doc.NewResource("host", "CycleProvider")
	host.Add("serverHost", rdf.Lit(fmt.Sprintf("host%d.uni-passau.de", i)))
	host.Add("serverPort", rdf.Lit(fmt.Sprint(port)))
	host.Add("serverInformation", rdf.Ref(doc.QualifyID("info")))
	info := doc.NewResource("info", "ServerInformation")
	info.Add("memory", rdf.Lit(fmt.Sprint(i)))
	info.Add("cpu", rdf.Lit("600"))
	return doc
}

// TestInterestGroupGrouping: subscribers whose batch outcome is identical
// share one changeset (built once), with unioned credits and a MemberCredits
// ownership map; subscribers with different interests get their own groups.
// The counters prove the work happened once per group, not per subscriber.
func TestInterestGroupGrouping(t *testing.T) {
	e := newTestEngine(t)
	aID, _, err := e.Subscribe("lmr-a", memRule(0))
	if err != nil {
		t.Fatal(err)
	}
	bID, _, err := e.Subscribe("lmr-b", memRule(0)) // identical to lmr-a
	if err != nil {
		t.Fatal(err)
	}
	c0ID, _, err := e.Subscribe("lmr-c", memRule(0)) // overlaps lmr-a...
	if err != nil {
		t.Fatal(err)
	}
	c1ID, _, err := e.Subscribe("lmr-c", memRule(1)) // ...but not fully
	if err != nil {
		t.Fatal(err)
	}
	dID, _, err := e.Subscribe("lmr-d", memRule(1))
	if err != nil {
		t.Fatal(err)
	}

	before := e.Stats()
	ps, err := e.RegisterDocuments([]*rdf.Document{memDoc(0, 80), memDoc(1, 80)})
	if err != nil {
		t.Fatal(err)
	}
	groups := ps.GroupList()
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 ({lmr-a,lmr-b}, {lmr-c}, {lmr-d})", len(groups))
	}

	// Group order is deterministic: by first member.
	shared := groups[0]
	if !reflect.DeepEqual(shared.Members, []string{"lmr-a", "lmr-b"}) {
		t.Fatalf("group 0 members = %v, want [lmr-a lmr-b]", shared.Members)
	}
	cs := shared.Changeset
	if len(cs.Upserts) != 1 || cs.Upserts[0].Resource.URIRef != "m0.rdf#host" {
		t.Fatalf("shared group upserts = %+v, want one m0.rdf#host", cs.Upserts)
	}
	wantUnion := []int64{aID, bID}
	sort.Slice(wantUnion, func(i, j int) bool { return wantUnion[i] < wantUnion[j] })
	if !reflect.DeepEqual(cs.Upserts[0].SubIDs, wantUnion) {
		t.Errorf("shared upsert SubIDs = %v, want union %v", cs.Upserts[0].SubIDs, wantUnion)
	}
	if len(cs.Upserts[0].Closure) != 1 || cs.Upserts[0].Closure[0].URIRef != "m0.rdf#info" {
		t.Errorf("shared upsert closure = %+v, want m0.rdf#info", cs.Upserts[0].Closure)
	}
	wantCredits := map[string][]int64{"lmr-a": {aID}, "lmr-b": {bID}}
	if !reflect.DeepEqual(cs.MemberCredits, wantCredits) {
		t.Errorf("MemberCredits = %v, want %v", cs.MemberCredits, wantCredits)
	}
	// The per-subscriber view aliases the shared changeset.
	if ps.Changesets["lmr-a"] != cs || ps.Changesets["lmr-b"] != cs {
		t.Error("Changesets map does not alias the shared group changeset")
	}

	cGroup := groups[1]
	if !reflect.DeepEqual(cGroup.Members, []string{"lmr-c"}) {
		t.Fatalf("group 1 members = %v, want [lmr-c]", cGroup.Members)
	}
	if got := upsertURIs(cGroup.Changeset); !reflect.DeepEqual(got, []string{"m0.rdf#host", "m1.rdf#host"}) {
		t.Errorf("lmr-c upserts = %v, want both hosts", got)
	}
	if cGroup.Changeset.MemberCredits != nil {
		t.Errorf("single-member group has MemberCredits %v, want nil", cGroup.Changeset.MemberCredits)
	}
	if !reflect.DeepEqual(cGroup.Changeset.Upserts[0].SubIDs, []int64{c0ID}) ||
		!reflect.DeepEqual(cGroup.Changeset.Upserts[1].SubIDs, []int64{c1ID}) {
		t.Errorf("lmr-c credits = %v/%v, want [%d]/[%d]",
			cGroup.Changeset.Upserts[0].SubIDs, cGroup.Changeset.Upserts[1].SubIDs, c0ID, c1ID)
	}

	dGroup := groups[2]
	if !reflect.DeepEqual(dGroup.Members, []string{"lmr-d"}) {
		t.Fatalf("group 2 members = %v, want [lmr-d]", dGroup.Members)
	}
	if got := upsertURIs(dGroup.Changeset); !reflect.DeepEqual(got, []string{"m1.rdf#host"}) {
		t.Errorf("lmr-d upserts = %v, want m1.rdf#host", got)
	}
	if !reflect.DeepEqual(dGroup.Changeset.Upserts[0].SubIDs, []int64{dID}) {
		t.Errorf("lmr-d credits = %v, want [%d]", dGroup.Changeset.Upserts[0].SubIDs, dID)
	}

	// Compute-once: three changesets for four subscribers, and the two
	// distinct host resources were fetched + closure-walked exactly once
	// each despite appearing in multiple groups.
	st := e.Stats()
	if got := st.ChangesetsBuilt - before.ChangesetsBuilt; got != 3 {
		t.Errorf("ChangesetsBuilt += %d, want 3", got)
	}
	if got := st.PublishGroups - before.PublishGroups; got != 3 {
		t.Errorf("PublishGroups += %d, want 3", got)
	}
	if got := st.GroupedSubscribers - before.GroupedSubscribers; got != 4 {
		t.Errorf("GroupedSubscribers += %d, want 4", got)
	}
	if got := st.UpsertsBuilt - before.UpsertsBuilt; got != 2 {
		t.Errorf("UpsertsBuilt += %d, want 2 (one per distinct URI)", got)
	}

	// A removal round coalesces too: bumping m0's memory off rule 0 makes
	// lmr-a, lmr-b, and lmr-c lose the same match — one group of three.
	changed := memDoc(0, 80)
	info, _ := changed.Find("m0.rdf#info")
	info.Set("memory", rdf.Lit("99"))
	ps, err = e.RegisterDocuments([]*rdf.Document{changed})
	if err != nil {
		t.Fatal(err)
	}
	groups = ps.GroupList()
	if len(groups) != 1 || !reflect.DeepEqual(groups[0].Members, []string{"lmr-a", "lmr-b", "lmr-c"}) {
		t.Fatalf("removal groups = %+v, want one group [lmr-a lmr-b lmr-c]", groups)
	}
	rcs := groups[0].Changeset
	wantRemovals := []Removal{
		{URIRef: "m0.rdf#host", SubID: aID},
		{URIRef: "m0.rdf#host", SubID: bID},
		{URIRef: "m0.rdf#host", SubID: c0ID},
	}
	sort.Slice(wantRemovals, func(i, j int) bool { return wantRemovals[i].SubID < wantRemovals[j].SubID })
	if !reflect.DeepEqual(rcs.Removals, wantRemovals) {
		t.Errorf("removals = %v, want %v", rcs.Removals, wantRemovals)
	}
	if len(rcs.MemberCredits) != 3 {
		t.Errorf("removal MemberCredits = %v, want entries for all three members", rcs.MemberCredits)
	}
	if !reflect.DeepEqual(rcs.MemberCredits["lmr-c"], []int64{c0ID}) {
		t.Errorf("lmr-c removal credits = %v, want [%d] (only the shared rule)",
			rcs.MemberCredits["lmr-c"], c0ID)
	}
}

// ownedView renders the slice of a changeset one member owns — upserts and
// removals restricted to its MemberCredits (everything, when nil) — in a
// canonical form, so coalesced and per-subscriber builds can be compared.
func ownedView(name string, cs *Changeset) string {
	if cs == nil {
		return "<nil>"
	}
	owned := map[int64]bool{}
	if cs.MemberCredits != nil {
		for _, id := range cs.MemberCredits[name] {
			owned[id] = true
		}
	}
	has := func(id int64) bool { return cs.MemberCredits == nil || owned[id] }
	var b strings.Builder
	for _, up := range cs.Upserts {
		var ids []int64
		for _, id := range up.SubIDs {
			if has(id) {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			continue
		}
		fmt.Fprintf(&b, "up %s %v %s\n", up.Resource.URIRef, ids, up.Resource.Fingerprint())
		for _, cl := range up.Closure {
			fmt.Fprintf(&b, "  cl %s %s\n", cl.URIRef, cl.Fingerprint())
		}
	}
	for _, rm := range cs.Removals {
		if has(rm.SubID) {
			fmt.Fprintf(&b, "rm %s %d\n", rm.URIRef, rm.SubID)
		}
	}
	for _, cl := range cs.ClosureUpserts {
		fmt.Fprintf(&b, "clup %s %s\n", cl.URIRef, cl.Fingerprint())
	}
	for _, fd := range cs.ForcedDeletes {
		fmt.Fprintf(&b, "del %s\n", fd)
	}
	return b.String()
}

// TestCoalescingAblationParity drives the coalesced engine and the
// DisableInterestCoalescing ablation through the same workload — upserts,
// updates, removals, and a document delete — and checks every subscriber's
// owned view of every publish is identical between the two. The ablation
// reproduces the pre-group build: one single-member group per subscriber,
// no MemberCredits.
func TestCoalescingAblationParity(t *testing.T) {
	build := func(opts Options) *Engine {
		e, err := NewEngineWithOptions(paperSchema(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	co := build(Options{})
	ab := build(Options{DisableInterestCoalescing: true})
	subscribers := []string{"lmr-a", "lmr-b", "lmr-c", "lmr-d"}

	for _, e := range []*Engine{co, ab} {
		for _, pair := range []struct {
			sub  string
			rule string
		}{
			{"lmr-a", memRule(0)}, {"lmr-b", memRule(0)},
			{"lmr-c", memRule(0)}, {"lmr-c", memRule(1)}, {"lmr-d", memRule(1)},
		} {
			if _, _, err := e.Subscribe(pair.sub, pair.rule); err != nil {
				t.Fatal(err)
			}
		}
	}

	// One step = the same mutation applied to both engines; after each,
	// every subscriber's owned view must match.
	step := func(label string, run func(e *Engine) (*PublishSet, error)) {
		t.Helper()
		psCo, err := run(co)
		if err != nil {
			t.Fatalf("%s (coalesced): %v", label, err)
		}
		psAb, err := run(ab)
		if err != nil {
			t.Fatalf("%s (ablation): %v", label, err)
		}
		for _, g := range psAb.GroupList() {
			if len(g.Members) != 1 || g.Changeset.MemberCredits != nil {
				t.Errorf("%s: ablation produced a shared group %v", label, g.Members)
			}
		}
		for _, sub := range subscribers {
			got := ownedView(sub, psCo.Changesets[sub])
			want := ownedView(sub, psAb.Changesets[sub])
			if got != want {
				t.Errorf("%s: %s diverged\ncoalesced:\n%s\nablation:\n%s", label, sub, got, want)
			}
		}
	}

	step("initial batch", func(e *Engine) (*PublishSet, error) {
		return e.RegisterDocuments([]*rdf.Document{memDoc(0, 80), memDoc(1, 80), memDoc(2, 80)})
	})
	step("update batch", func(e *Engine) (*PublishSet, error) {
		return e.RegisterDocuments([]*rdf.Document{memDoc(0, 81), memDoc(1, 81)})
	})
	step("retarget m2 onto rule 1", func(e *Engine) (*PublishSet, error) {
		doc := memDoc(2, 81)
		info, _ := doc.Find("m2.rdf#info")
		info.Set("memory", rdf.Lit("1"))
		return e.RegisterDocuments([]*rdf.Document{doc})
	})
	step("remove m0 from rule 0", func(e *Engine) (*PublishSet, error) {
		doc := memDoc(0, 81)
		info, _ := doc.Find("m0.rdf#info")
		info.Set("memory", rdf.Lit("99"))
		return e.RegisterDocuments([]*rdf.Document{doc})
	})
	step("delete m1.rdf", func(e *Engine) (*PublishSet, error) {
		return e.DeleteDocument("m1.rdf")
	})

	// The ablation did strictly more construction work for the same output.
	coSt, abSt := co.Stats(), ab.Stats()
	if coSt.ChangesetsBuilt >= abSt.ChangesetsBuilt {
		t.Errorf("ChangesetsBuilt: coalesced %d, ablation %d — coalescing should build fewer",
			coSt.ChangesetsBuilt, abSt.ChangesetsBuilt)
	}
	if coSt.UpsertsBuilt >= abSt.UpsertsBuilt {
		t.Errorf("UpsertsBuilt: coalesced %d, ablation %d — shared URI cache should build fewer",
			coSt.UpsertsBuilt, abSt.UpsertsBuilt)
	}
}
