package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mdv/internal/rdf"
)

// Differential tests for the contains-rule substring index: an engine with
// the text index enabled must be observationally identical to the
// -no-text-index ablation — same publish sets byte for byte, same stats,
// same filter tables, same materialized matches — over randomized mixes of
// register, rewrite, delete, subscribe, and unsubscribe heavy on the
// contains edge cases the index must reproduce exactly: the empty constant
// (matches everything), multi-byte UTF-8 constants, case sensitivity, and
// bare-variable `c contains 'x'` rules matching the URIref. Run under both
// serial and sharded triggering, since the index is wired through both
// paths.

var (
	textDiffNeedles     = []string{"", "passau", "a", "00", "ü", "grün", "🚲", "PASSAU", ".de", "ß"}
	textDiffBareNeedles = []string{"", "doc", "rdf#host", "7", "#dp"}
	textDiffHosts       = []string{
		"pirates.uni-passau.de", "grün.uni-passau.de", "GRÜN.UNI-PASSAU.DE",
		"🚲🚲.example.org", "007", "", "straße.de",
	}
	textDiffThemes = []string{"astronomy", "x-ray", "ünïcode"}
)

// textDiffRule draws one rule, weighted toward the contains shapes; the
// remaining draws reuse the sharded differential's generator so the index
// is exercised among every other operator.
func textDiffRule(rng *rand.Rand) string {
	needle := func() string { return textDiffNeedles[rng.Intn(len(textDiffNeedles))] }
	switch rng.Intn(10) {
	case 0: // property contains
		return fmt.Sprintf(`search CycleProvider c register c where c.serverHost contains '%s'`, needle())
	case 1: // bare-variable contains (matches the URIref)
		return fmt.Sprintf(`search CycleProvider c register c where c contains '%s'`,
			textDiffBareNeedles[rng.Intn(len(textDiffBareNeedles))])
	case 2: // contains on a set-valued property of another class
		return fmt.Sprintf(`search DataProvider d register d where d.theme contains '%s'`,
			[]string{"astro", "x", "ünï", ""}[rng.Intn(4)])
	case 3: // contains shared with a numeric predicate
		return fmt.Sprintf(`search CycleProvider c register c where c.serverHost contains '%s' and c.serverPort %s %d`,
			needle(), shardDiffOp(rng), rng.Intn(6000))
	case 4: // OR-split over two contains constants
		return fmt.Sprintf(`search CycleProvider c register c where c.serverHost contains '%s' or c contains '%s'`,
			needle(), textDiffBareNeedles[rng.Intn(len(textDiffBareNeedles))])
	case 5: // contains feeding a reference join
		return fmt.Sprintf(
			`search CycleProvider c, ServerInformation s register s where c.serverInformation = s and c.serverHost contains '%s'`,
			needle())
	default:
		return shardDiffRule(rng)
	}
}

// textDiffDoc draws one document over text-heavy value pools (UTF-8 hosts,
// case variants, the empty string).
func textDiffDoc(rng *rand.Rand, i int) *rdf.Document {
	doc := rdf.NewDocument(fmt.Sprintf("doc%d.rdf", i))
	host := doc.NewResource("host", "CycleProvider")
	host.Add("serverHost", rdf.Lit(textDiffHosts[rng.Intn(len(textDiffHosts))]))
	host.Add("serverPort", rdf.Lit(shardDiffPorts[rng.Intn(len(shardDiffPorts))]))
	switch rng.Intn(4) {
	case 0, 1:
		host.Add("serverInformation", rdf.Ref(doc.URI+"#info"))
		info := doc.NewResource("info", "ServerInformation")
		info.Add("memory", rdf.Lit(shardDiffInts[rng.Intn(len(shardDiffInts))]))
		info.Add("cpu", rdf.Lit(shardDiffInts[rng.Intn(len(shardDiffInts))]))
	case 2:
		host.Add("serverInformation", rdf.Ref(fmt.Sprintf("doc%d.rdf#info", rng.Intn(10))))
	}
	if rng.Intn(3) == 0 {
		dp := doc.NewResource("dp", "DataProvider")
		for _, th := range textDiffThemes[:1+rng.Intn(len(textDiffThemes))] {
			dp.Add("theme", rdf.Lit(th))
		}
		dp.Add("host", rdf.Ref(doc.URI+"#host"))
	}
	return doc
}

// TestTextIndexDifferential drives an indexed engine and the scan ablation
// through identical randomized workloads and requires identical observable
// behavior at every step, under both serial and sharded triggering.
func TestTextIndexDifferential(t *testing.T) {
	seeds := []int64{7, 1234, 80731}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, nShards := range []int{1, 4} {
		for _, seed := range seeds {
			nShards, seed := nShards, seed
			t.Run(fmt.Sprintf("shards=%d/seed=%d", nShards, seed), func(t *testing.T) {
				runTextDifferential(t, nShards, seed)
			})
		}
	}
}

func runTextDifferential(t *testing.T, nShards int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	indexed, err := NewEngineWithOptions(paperSchema(), Options{Shards: nShards})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := NewEngineWithOptions(paperSchema(),
		Options{Shards: nShards, DisableTextIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if indexed.text == nil {
		t.Fatal("indexed engine has no text index")
	}
	if scan.text != nil {
		t.Fatal("ablated engine built a text index")
	}

	live := map[string]bool{}
	var subs []int64
	subscribers := []string{"lmr1", "lmr2", "lmr3"}

	pickDoc := func() string {
		uris := make([]string, 0, len(live))
		for u := range live {
			uris = append(uris, u)
		}
		sort.Strings(uris)
		return uris[rng.Intn(len(uris))]
	}
	check := func(step int, what string) {
		t.Helper()
		// Both engines run the same sharding mode, so every counter —
		// including the shard ones — must match exactly.
		if gi, gs := indexed.Stats(), scan.Stats(); gi != gs {
			t.Fatalf("step %d (%s): stats diverged\n indexed %+v\n scan    %+v", step, what, gi, gs)
		}
		di, ds := dumpFilterState(t, indexed), dumpFilterState(t, scan)
		if di != ds {
			t.Fatalf("step %d (%s): filter state diverged:\n%s", step, what, diffDumps(ds, di))
		}
		checkShardMirror(t, indexed)
		checkShardMirror(t, scan)
		checkTextMirror(t, indexed)
	}

	for i := 0; i < 4; i++ {
		rule := textDiffRule(rng)
		who := subscribers[rng.Intn(len(subscribers))]
		idi, csi, err := indexed.Subscribe(who, rule)
		if err != nil {
			continue // some drawn rules are invalid for the schema; skip in both
		}
		ids, css, err := scan.Subscribe(who, rule)
		if err != nil {
			t.Fatalf("ablation rejected rule the indexed engine accepted %q: %v", rule, err)
		}
		if idi != ids {
			t.Fatalf("subscription ids diverged: %d vs %d", idi, ids)
		}
		var bi, bs strings.Builder
		renderChangeset(&bi, csi)
		renderChangeset(&bs, css)
		if bi.String() != bs.String() {
			t.Fatalf("initial changeset for %q diverged:\n indexed:\n%s scan:\n%s", rule, bi.String(), bs.String())
		}
		subs = append(subs, idi)
	}

	const steps = 30
	for step := 0; step < steps; step++ {
		switch r := rng.Intn(10); {
		case r < 4: // register a batch of new or rewritten documents
			k := 1 + rng.Intn(3)
			var docs []*rdf.Document
			inBatch := map[string]bool{}
			for i := 0; i < k; i++ {
				d := textDiffDoc(rng, rng.Intn(10))
				if inBatch[d.URI] {
					continue
				}
				inBatch[d.URI] = true
				live[d.URI] = true
				docs = append(docs, d)
			}
			psi, err := indexed.RegisterDocuments(docs)
			if err != nil {
				t.Fatalf("step %d: indexed register: %v", step, err)
			}
			pss, err := scan.RegisterDocuments(docs)
			if err != nil {
				t.Fatalf("step %d: scan register: %v", step, err)
			}
			if ri, rs := renderPublishSet(psi), renderPublishSet(pss); ri != rs {
				t.Fatalf("step %d: publish sets diverged:\n indexed:\n%s\n scan:\n%s", step, ri, rs)
			}
		case r < 6 && len(live) > 0: // delete a document
			uri := pickDoc()
			delete(live, uri)
			psi, err := indexed.DeleteDocument(uri)
			if err != nil {
				t.Fatalf("step %d: indexed delete: %v", step, err)
			}
			pss, err := scan.DeleteDocument(uri)
			if err != nil {
				t.Fatalf("step %d: scan delete: %v", step, err)
			}
			if ri, rs := renderPublishSet(psi), renderPublishSet(pss); ri != rs {
				t.Fatalf("step %d: delete publish sets diverged:\n indexed:\n%s\n scan:\n%s", step, ri, rs)
			}
		case r < 8: // subscribe a fresh rule (exercises the index insert)
			rule := textDiffRule(rng)
			who := subscribers[rng.Intn(len(subscribers))]
			idi, csi, err := indexed.Subscribe(who, rule)
			if err != nil {
				continue
			}
			ids, css, err := scan.Subscribe(who, rule)
			if err != nil {
				t.Fatalf("step %d: ablation rejected %q: %v", step, rule, err)
			}
			if idi != ids {
				t.Fatalf("step %d: subscription ids diverged: %d vs %d", step, idi, ids)
			}
			var bi, bs strings.Builder
			renderChangeset(&bi, csi)
			renderChangeset(&bs, css)
			if bi.String() != bs.String() {
				t.Fatalf("step %d: initial changeset diverged for %q", step, rule)
			}
			subs = append(subs, idi)
		default: // unsubscribe (exercises the index sweep)
			if len(subs) == 0 {
				continue
			}
			i := rng.Intn(len(subs))
			id := subs[i]
			subs = append(subs[:i], subs[i+1:]...)
			if err := indexed.Unsubscribe(id); err != nil {
				t.Fatalf("step %d: indexed unsubscribe: %v", step, err)
			}
			if err := scan.Unsubscribe(id); err != nil {
				t.Fatalf("step %d: scan unsubscribe: %v", step, err)
			}
		}
		if step%5 == 4 {
			check(step, "periodic")
		}
	}
	check(steps, "final")

	for _, id := range subs {
		mi, err := indexed.MatchingResources(id)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := scan.MatchingResources(id)
		if err != nil {
			t.Fatal(err)
		}
		ui := make([]string, len(mi))
		for i, r := range mi {
			ui[i] = r.URIRef
		}
		us := make([]string, len(ms))
		for i, r := range ms {
			us[i] = r.URIRef
		}
		if fmt.Sprint(ui) != fmt.Sprint(us) {
			t.Errorf("sub %d matches diverged:\n indexed %v\n scan    %v", id, ui, us)
		}
	}

	// Snapshots carry no index state and saving is deterministic. (Indexed
	// and scan snapshots are logically equivalent but not compared byte for
	// byte: RuleResults physical row order follows match-insertion order,
	// which can differ between the index's sorted per-atom emission and the
	// CON query's table-scan order; the reload probes below prove the
	// equivalence.)
	var snap1, snap2 bytes.Buffer
	if err := indexed.Save(&snap1); err != nil {
		t.Fatal(err)
	}
	if err := indexed.Save(&snap2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap1.Bytes(), snap2.Bytes()) {
		t.Error("saving the same indexed engine twice produced different bytes")
	}

	// Reload the indexed snapshot both with the index (rebuild from the
	// canonical table) and without it (ablation of a loaded snapshot): both
	// must keep producing publish sets identical to the scan engine's.
	reIdx, err := LoadWithOptions(bytes.NewReader(snap1.Bytes()), paperSchema(), Options{Shards: nShards})
	if err != nil {
		t.Fatal(err)
	}
	checkTextMirror(t, reIdx)
	reScan, err := LoadWithOptions(bytes.NewReader(snap1.Bytes()), paperSchema(),
		Options{Shards: nShards, DisableTextIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if reScan.text != nil {
		t.Fatal("reloaded ablation built a text index")
	}
	probe := textDiffDoc(rng, 11)
	psScan, err := scan.RegisterDocument(probe)
	if err != nil {
		t.Fatal(err)
	}
	want := renderPublishSet(psScan)
	for name, e := range map[string]*Engine{"indexed-reload": reIdx, "ablated-reload": reScan} {
		ps, err := e.RegisterDocument(probe)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderPublishSet(ps); got != want {
			t.Errorf("%s diverged on the probe publish:\n scan:\n%s\n %s:\n%s", name, want, name, got)
		}
	}
}
