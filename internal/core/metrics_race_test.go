package core_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mdv/internal/lmr"
	"mdv/internal/metrics"
	"mdv/internal/provider"
	"mdv/internal/rdf"
)

// TestMetricsCoherenceUnderConcurrentPublish hammers an instrumented
// provider with parallel registrations and updates while scrapers race the
// writers, then checks the registry is exactly coherent:
//
//   - Operation counts are exact: every stage histogram saw precisely the
//     expected number of observations (updates run the filter twice — once
//     over the old version, once over the new — so the triggering and join
//     stages count registrations + 2*updates).
//   - The stages are disjoint slices of one registration, so the per-stage
//     sums together never exceed the whole-publish sum.
//   - Histogram counts are derived from the bucket counters, so a scrape
//     can never see count != sum(buckets), and the pipeline's observation
//     order (prepare -> lock_wait -> ... -> changeset -> publish) holds at
//     every instant, not just at quiescence.
//
// Run with -race: the mid-flight scrapers exercise the same lock-free reads
// a /metrics scrape performs against the PR 4 concurrent publish path.
func TestMetricsCoherenceUnderConcurrentPublish(t *testing.T) {
	schema := soundnessSchema()
	prov, err := provider.New("mdp", schema)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	prov.EnableMetrics(reg)
	node, err := lmr.New("lmr", schema, prov)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.AddSubscription(
		`search CycleProvider c register c where c.serverPort >= 0`); err != nil {
		t.Fatal(err)
	}

	// Instrument registration is idempotent, so asking again for the same
	// family and label set yields the engine's own histograms.
	publish := reg.Histogram("mdv_publish_seconds", "", metrics.TimeBuckets)
	batch := reg.Histogram("mdv_publish_batch_docs", "", metrics.SizeBuckets)
	stageNames := []string{"prepare", "lock_wait", "triggering", "join", "changeset"}
	stage := map[string]*metrics.Histogram{}
	for _, s := range stageNames {
		stage[s] = reg.Histogram("mdv_publish_stage_seconds", "", metrics.TimeBuckets,
			metrics.L("stage", s))
	}

	mkDoc := func(w, i, port int) *rdf.Document {
		doc := rdf.NewDocument(fmt.Sprintf("m%d-%d.rdf", w, i))
		cp := doc.NewResource("cp", "CycleProvider")
		cp.Add("serverHost", rdf.Lit("h.example.org"))
		cp.Add("serverPort", rdf.Lit(fmt.Sprint(port)))
		cp.Add("synthValue", rdf.Lit("1"))
		return doc
	}

	const writers = 4
	const docsPerWriter = 20
	const updatesPerWriter = 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsPerWriter; i++ {
				if err := prov.RegisterDocument(mkDoc(w, i, i)); err != nil {
					t.Errorf("register: %v", err)
					return
				}
			}
			// Updates change serverPort so the diff is non-empty and both
			// filter executions (old version, new version) actually run.
			for i := 0; i < updatesPerWriter; i++ {
				if err := prov.RegisterDocument(mkDoc(w, i, i+1000)); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(w)
	}

	// Scrapers racing the writers: rendered text plus the instantaneous
	// pipeline-order invariants. Each stage is observed before the next, so
	// at any instant the downstream count can never exceed the upstream one
	// — a torn or misordered read would show up here (and under -race).
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if p, c := publish.Count(), stage["changeset"].Count(); p > c {
					t.Errorf("publish count %d > changeset count %d (publish is observed last)", p, c)
					return
				}
				if c, l := stage["changeset"].Count(), stage["lock_wait"].Count(); c > l {
					t.Errorf("changeset count %d > lock_wait count %d", c, l)
					return
				}
				if l, p := stage["lock_wait"].Count(), stage["prepare"].Count(); l > p {
					t.Errorf("lock_wait count %d > prepare count %d", l, p)
					return
				}
				if j, tr := stage["join"].Count(), stage["triggering"].Count(); j > tr {
					t.Errorf("join count %d > triggering count %d", j, tr)
					return
				}
				if text := reg.Text(); !strings.Contains(text, "mdv_publish_seconds_count") {
					t.Error("scrape missing mdv_publish_seconds_count")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	// Exact operation counts at quiescence.
	const regs = writers * docsPerWriter
	const upds = writers * updatesPerWriter
	const calls = regs + upds
	if got := publish.Count(); got != calls {
		t.Errorf("publish count = %d, want %d", got, calls)
	}
	if got := batch.Count(); got != calls {
		t.Errorf("batch-docs count = %d, want %d", got, calls)
	}
	if got := batch.Sum(); got != float64(calls) {
		t.Errorf("batch-docs sum = %g, want %d (one document per registration)", got, calls)
	}
	for _, s := range []string{"prepare", "lock_wait", "changeset"} {
		if got := stage[s].Count(); got != calls {
			t.Errorf("stage %s count = %d, want %d", s, got, calls)
		}
	}
	// Updates run the filter twice: over the old version (retraction) and
	// the new one (materialization).
	for _, s := range []string{"triggering", "join"} {
		if got, want := stage[s].Count(), uint64(regs+2*upds); got != want {
			t.Errorf("stage %s count = %d, want %d", s, got, want)
		}
	}

	// Disjoint-slices invariant: the five stages partition distinct spans
	// of each registration, so their sums are bounded by the total (small
	// epsilon for float accumulation).
	var stagesSum float64
	for _, h := range stage {
		stagesSum += h.Sum()
	}
	if pub := publish.Sum(); stagesSum > pub+1e-6 {
		t.Errorf("sum of stage sums %g exceeds total publish sum %g", stagesSum, pub)
	}

	// Count is derived from the bucket counters — never stored separately.
	hists := map[string]*metrics.Histogram{"publish": publish, "batch": batch}
	for s, h := range stage {
		hists["stage:"+s] = h
	}
	for name, h := range hists {
		_, counts := h.Buckets()
		var n uint64
		for _, c := range counts {
			n += c
		}
		if n != h.Count() {
			t.Errorf("%s: bucket sum %d != count %d", name, n, h.Count())
		}
	}

	// The final exposition carries every engine family.
	text := reg.Text()
	for _, fam := range []string{
		"mdv_publish_seconds", "mdv_publish_stage_seconds",
		"mdv_publish_batch_docs", "mdv_engine_stat",
	} {
		if !strings.Contains(text, "# TYPE "+fam) {
			t.Errorf("final scrape missing family %s", fam)
		}
	}
	if got := node.Repository().Len(); got != regs {
		t.Errorf("cache holds %d resources, want %d", got, regs)
	}
}
