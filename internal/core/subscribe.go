package core

import (
	"fmt"
	"sort"

	"mdv/internal/rdb"
	"mdv/internal/rdf"
	"mdv/internal/rules"
)

// Subscription describes one registered subscription.
type Subscription struct {
	ID         int64
	Subscriber string
	RuleText   string
}

// Subscribe registers a subscription rule for a subscriber (an LMR). The
// rule is parsed, normalized (splitting OR into several normalized rules),
// decomposed into atomic rules merged with the global dependency graph
// (§3.3), and evaluated against the already registered metadata. The
// returned changeset carries the initial cache content: every currently
// matching resource with its strong-reference closure.
func (e *Engine) Subscribe(subscriber, ruleText string) (int64, *Changeset, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	rule, err := rules.Parse(ruleText)
	if err != nil {
		return 0, nil, err
	}
	normalized, err := rules.Normalize(rule, e.schema, e.resolveNamed)
	if err != nil {
		return 0, nil, err
	}

	e.nextSubID++
	subID := e.nextSubID
	if _, err := e.db.Exec(`INSERT INTO Subscriptions (sub_id, subscriber, rule_text) VALUES (?, ?, ?)`,
		rdb.NewInt(subID), rdb.NewText(subscriber), rdb.NewText(ruleText)); err != nil {
		return 0, nil, err
	}

	ctx := &internCtx{}
	endRules := make([]int64, 0, len(normalized))
	for _, nr := range normalized {
		end, err := e.decomposeNormalRule(nr, ctx)
		if err != nil {
			// Roll back the subscription row; atomic-rule refcounts are
			// repaired by releasing what was interned so far.
			e.releaseInterned(ctx.interned)
			e.db.Exec(`DELETE FROM Subscriptions WHERE sub_id = ?`, rdb.NewInt(subID))
			return 0, nil, err
		}
		endRules = append(endRules, end)
		if _, err := e.db.Exec(`INSERT INTO SubscriptionEndRules (sub_id, end_rule) VALUES (?, ?)`,
			rdb.NewInt(subID), rdb.NewInt(end)); err != nil {
			return 0, nil, err
		}
	}
	for _, id := range ctx.interned {
		if _, err := e.db.Exec(`INSERT INTO SubscriptionAtomicRules (sub_id, rule_id) VALUES (?, ?)`,
			rdb.NewInt(subID), rdb.NewInt(id)); err != nil {
			return 0, nil, err
		}
	}

	// Initial cache fill: current matches of the end rules.
	cs := &Changeset{}
	delivered := map[string]bool{}
	for _, end := range endRules {
		uris, err := e.ruleResultsOfLocked(end)
		if err != nil {
			return 0, nil, err
		}
		for _, uri := range uris {
			if delivered[uri] {
				continue
			}
			delivered[uri] = true
			up, err := e.buildUpsert(uri, map[int64]bool{subID: true})
			if err != nil {
				return 0, nil, err
			}
			if up != nil {
				cs.Upserts = append(cs.Upserts, *up)
			}
		}
	}
	return subID, cs, nil
}

// ResubscribeFill builds a full-state changeset for one subscriber: every
// resource currently matching any of its subscriptions, with its credits
// and strong-reference closure. A durable provider delivers it as a reset
// changeset when it cannot prove a gap-free changelog replay for a
// resuming subscriber (e.g. after truncation).
func (e *Engine) ResubscribeFill(subscriber string) (*Changeset, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	subRows, err := e.db.Query(`SELECT sub_id FROM Subscriptions WHERE subscriber = ?`,
		rdb.NewText(subscriber))
	if err != nil {
		return nil, err
	}
	credits := map[string]map[int64]bool{}
	for _, row := range subRows.Data {
		subID := row[0].Int
		endRows, err := e.db.Query(`SELECT end_rule FROM SubscriptionEndRules WHERE sub_id = ?`,
			rdb.NewInt(subID))
		if err != nil {
			return nil, err
		}
		for _, er := range endRows.Data {
			uris, err := e.ruleResultsOfLocked(er[0].Int)
			if err != nil {
				return nil, err
			}
			for _, uri := range uris {
				if credits[uri] == nil {
					credits[uri] = map[int64]bool{}
				}
				credits[uri][subID] = true
			}
		}
	}
	uris := make([]string, 0, len(credits))
	for uri := range credits {
		uris = append(uris, uri)
	}
	sort.Strings(uris)
	cs := &Changeset{}
	for _, uri := range uris {
		up, err := e.buildUpsert(uri, credits[uri])
		if err != nil {
			return nil, err
		}
		if up != nil {
			cs.Upserts = append(cs.Upserts, *up)
		}
	}
	return cs, nil
}

// Unsubscribe removes a subscription and releases its atomic rules. Atomic
// rules whose refcount drops to zero are deleted together with their filter
// table entries, group memberships, dependencies, and materialized results
// (§2.2: rules can be changed or removed when users adjust their
// selections).
func (e *Engine) Unsubscribe(subID int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()

	rows, err := e.db.Query(`SELECT sub_id FROM Subscriptions WHERE sub_id = ?`, rdb.NewInt(subID))
	if err != nil {
		return err
	}
	if rows.Empty() {
		return fmt.Errorf("core: no subscription %d", subID)
	}
	ruleRows, err := e.db.Query(`SELECT rule_id FROM SubscriptionAtomicRules WHERE sub_id = ?`,
		rdb.NewInt(subID))
	if err != nil {
		return err
	}
	interned := make([]int64, 0, ruleRows.Len())
	for _, r := range ruleRows.Data {
		interned = append(interned, r[0].Int)
	}
	if _, err := e.db.Exec(`DELETE FROM Subscriptions WHERE sub_id = ?`, rdb.NewInt(subID)); err != nil {
		return err
	}
	if _, err := e.db.Exec(`DELETE FROM SubscriptionEndRules WHERE sub_id = ?`, rdb.NewInt(subID)); err != nil {
		return err
	}
	if _, err := e.db.Exec(`DELETE FROM SubscriptionAtomicRules WHERE sub_id = ?`, rdb.NewInt(subID)); err != nil {
		return err
	}
	return e.releaseInterned(interned)
}

// releaseInterned decrements refcounts and sweeps rules that reached zero.
func (e *Engine) releaseInterned(interned []int64) error {
	for _, id := range interned {
		if _, err := e.db.Exec(`UPDATE AtomicRules SET refcount = refcount - 1 WHERE rule_id = ?`,
			rdb.NewInt(id)); err != nil {
			return err
		}
	}
	// Sweep: delete zero-refcount rules. One pass suffices because the
	// refcounts of input rules were decremented independently (every intern
	// call was recorded).
	rows, err := e.db.Query(`SELECT rule_id, kind FROM AtomicRules WHERE refcount <= 0`)
	if err != nil {
		return err
	}
	for _, r := range rows.Data {
		id, kind := r[0].Int, r[1].Str
		if _, err := e.db.Exec(`DELETE FROM AtomicRules WHERE rule_id = ?`, rdb.NewInt(id)); err != nil {
			return err
		}
		if _, err := e.db.Exec(`DELETE FROM RuleResults WHERE rule_id = ?`, rdb.NewInt(id)); err != nil {
			return err
		}
		if _, err := e.db.Exec(`DELETE FROM RuleDependencies WHERE source_rule = ?`, rdb.NewInt(id)); err != nil {
			return err
		}
		if _, err := e.db.Exec(`DELETE FROM RuleDependencies WHERE target_rule = ?`, rdb.NewInt(id)); err != nil {
			return err
		}
		if kind == kindTrigger {
			// Release the rule's substring-index entry before its canonical
			// CON row (the row carries the cohort key the removal needs).
			if e.text != nil {
				crows, err := e.db.Query(
					`SELECT class, property, value FROM FilterRulesCON WHERE rule_id = ?`, rdb.NewInt(id))
				if err != nil {
					return err
				}
				for _, cr := range crows.Data {
					e.text.remove(cr[0].Str, cr[1].Str, cr[2].Str, id)
				}
			}
			for _, table := range trigTableNames {
				if _, err := e.db.Exec(`DELETE FROM `+table+` WHERE rule_id = ?`, rdb.NewInt(id)); err != nil {
					return err
				}
			}
			if e.shards != nil {
				if err := e.shards.deleteRule(id); err != nil {
					return err
				}
			}
			continue
		}
		// Join rule: remove from its group; drop the group when empty.
		grows, err := e.db.Query(`SELECT group_id FROM JoinRules WHERE rule_id = ?`, rdb.NewInt(id))
		if err != nil {
			return err
		}
		if _, err := e.db.Exec(`DELETE FROM JoinRules WHERE rule_id = ?`, rdb.NewInt(id)); err != nil {
			return err
		}
		if !grows.Empty() {
			gid := grows.Data[0][0].Int
			if err := e.rebuildGroupFeeds(gid); err != nil {
				return err
			}
			mrows, err := e.db.Query(`SELECT COUNT(*) FROM JoinRules WHERE group_id = ?`, rdb.NewInt(gid))
			if err != nil {
				return err
			}
			if n, _ := mrows.Scalar(); n.Int == 0 {
				if _, err := e.db.Exec(`DELETE FROM RuleGroups WHERE group_id = ?`, rdb.NewInt(gid)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Subscriptions lists all registered subscriptions, sorted by id.
func (e *Engine) Subscriptions() ([]Subscription, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rows, err := e.db.Query(`SELECT sub_id, subscriber, rule_text FROM Subscriptions ORDER BY sub_id`)
	if err != nil {
		return nil, err
	}
	out := make([]Subscription, 0, rows.Len())
	for _, r := range rows.Data {
		out = append(out, Subscription{ID: r[0].Int, Subscriber: r[1].Str, RuleText: r[2].Str})
	}
	return out, nil
}

// SubscriptionsOf lists a subscriber's subscriptions.
func (e *Engine) SubscriptionsOf(subscriber string) ([]Subscription, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rows, err := e.db.Query(
		`SELECT sub_id, subscriber, rule_text FROM Subscriptions WHERE subscriber = ? ORDER BY sub_id`,
		rdb.NewText(subscriber))
	if err != nil {
		return nil, err
	}
	out := make([]Subscription, 0, rows.Len())
	for _, r := range rows.Data {
		out = append(out, Subscription{ID: r[0].Int, Subscriber: r[1].Str, RuleText: r[2].Str})
	}
	return out, nil
}

// RegisterNamedRule stores a rule under a name so later rules can use it as
// an extension (paper §2.3). The named rule must normalize to a single
// conjunctive rule (no OR).
func (e *Engine) RegisterNamedRule(name, ruleText string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.named[name]; exists {
		return fmt.Errorf("core: named rule %q already registered", name)
	}
	if _, isClass := e.schema.Class(name); isClass {
		return fmt.Errorf("core: name %q collides with a schema class", name)
	}
	rule, err := rules.Parse(ruleText)
	if err != nil {
		return err
	}
	normalized, err := rules.Normalize(rule, e.schema, e.resolveNamed)
	if err != nil {
		return err
	}
	if len(normalized) != 1 {
		return fmt.Errorf("core: named rule %q must not contain OR (normalizes to %d rules)",
			name, len(normalized))
	}
	e.named[name] = normalized[0]
	return nil
}

// NamedRules lists the registered rule names, sorted.
func (e *Engine) NamedRules() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.named))
	for name := range e.named {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (e *Engine) resolveNamed(name string) (*rules.NormalRule, bool) {
	nr, ok := e.named[name]
	return nr, ok
}

// EndRulesOf returns the end atomic rules of a subscription (tests).
func (e *Engine) EndRulesOf(subID int64) ([]int64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.endRulesOfLocked(subID)
}

func (e *Engine) endRulesOfLocked(subID int64) ([]int64, error) {
	rows, err := e.db.Query(`SELECT end_rule FROM SubscriptionEndRules WHERE sub_id = ? ORDER BY end_rule`,
		rdb.NewInt(subID))
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, rows.Len())
	for _, r := range rows.Data {
		out = append(out, r[0].Int)
	}
	return out, nil
}

// MatchingResources evaluates which resources currently match a
// subscription (the union of its end rules' materialized results).
func (e *Engine) MatchingResources(subID int64) ([]*rdf.Resource, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ends, err := e.endRulesOfLocked(subID)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []*rdf.Resource
	for _, end := range ends {
		uris, err := e.ruleResultsOfLocked(end)
		if err != nil {
			return nil, err
		}
		for _, uri := range uris {
			if seen[uri] {
				continue
			}
			seen[uri] = true
			res, ok, err := e.getResourceLocked(uri)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, res)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].URIRef < out[b].URIRef })
	return out, nil
}
