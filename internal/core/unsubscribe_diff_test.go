package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"mdv/internal/rdf"
)

// filterStateTables is every table the subscribe path writes: the atomic
// rule catalog, the dependency graph, join groups with their feed edges,
// the ten operator filter tables, materialized results, the transient
// filter-run tables, and the subscription bookkeeping itself.
var filterStateTables = []string{
	"AtomicRules", "RuleDependencies", "JoinRules", "GroupFeeds", "RuleGroups",
	"FilterRulesANY", "FilterRulesEQ", "FilterRulesEQN", "FilterRulesNE",
	"FilterRulesNEN", "FilterRulesCON", "FilterRulesLT", "FilterRulesLE",
	"FilterRulesGT", "FilterRulesGE",
	"RuleResults", "ResultObjects", "FilterData",
	"Subscriptions", "SubscriptionEndRules", "SubscriptionAtomicRules",
}

// dumpFilterState renders the full contents of every filter-state table,
// row-order independent, for byte-exact comparison.
func dumpFilterState(t *testing.T, e *Engine) string {
	t.Helper()
	var b strings.Builder
	for _, tbl := range filterStateTables {
		rows, err := e.db.Query(`SELECT * FROM ` + tbl)
		if err != nil {
			t.Fatalf("dump %s: %v", tbl, err)
		}
		lines := make([]string, 0, rows.Len())
		for _, r := range rows.Data {
			lines = append(lines, fmt.Sprintf("%v", r))
		}
		sort.Strings(lines)
		fmt.Fprintf(&b, "== %s ==\n", tbl)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// unsubscribeDiffRules cover every filter table and both rule kinds:
// class-only (ANY), string and numeric equality/inequality, contains, all
// four range operators, OR-splitting (several end rules per subscription),
// and reference joins that create join rules, rule groups, group feeds,
// and dependency edges.
var unsubscribeDiffRules = []string{
	`search CycleProvider c register c`,
	`search CycleProvider c register c where c.serverHost = 'pirates.uni-passau.de'`,
	`search CycleProvider c register c where c.serverHost != 'nobody'`,
	`search CycleProvider c register c where c.serverHost contains 'passau'`,
	`search CycleProvider c register c where c.serverPort = 5874 or c.serverPort != 80`,
	`search ServerInformation s register s where s.memory < 100 and s.cpu <= 600`,
	`search ServerInformation s register s where s.memory > 64 or s.cpu >= 500`,
	example331,
	`search CycleProvider c, ServerInformation s register s where c.serverInformation = s and c.serverPort > 1000`,
}

// TestUnsubscribeRestoresFilterState proves full unsubscribe cleanup: after
// a subscribe→unsubscribe cycle — including shared atomic rules from a
// second subscriber and an interleaved publish that materialized results —
// every filter table is byte-identical to its pre-subscribe contents, and a
// subsequent publish performs exactly the filter work a never-subscribed
// engine performs (no leaked rows keep matching).
func TestUnsubscribeRestoresFilterState(t *testing.T) {
	e := newTestEngine(t)
	control := newTestEngine(t)
	if _, err := e.RegisterDocument(figure1Doc()); err != nil {
		t.Fatal(err)
	}
	if _, err := control.RegisterDocument(figure1Doc()); err != nil {
		t.Fatal(err)
	}

	before := dumpFilterState(t, e)

	var subIDs []int64
	for _, rule := range unsubscribeDiffRules {
		id, _, err := e.Subscribe("lmr1", rule)
		if err != nil {
			t.Fatalf("subscribe %q: %v", rule, err)
		}
		subIDs = append(subIDs, id)
	}
	// A second subscriber sharing rule texts: the shared atomic rules reach
	// refcount 2, so the first unsubscribes only decrement and the last one
	// must sweep.
	for _, rule := range unsubscribeDiffRules[:4] {
		id, _, err := e.Subscribe("lmr2", rule)
		if err != nil {
			t.Fatal(err)
		}
		subIDs = append(subIDs, id)
	}

	during := dumpFilterState(t, e)
	if during == before {
		t.Fatal("subscribing changed no filter table; the differential proves nothing")
	}

	// Publish while subscribed so RuleResults materialize matches that the
	// unsubscribe sweep must remove again.
	doc2 := rdf.NewDocument("doc2.rdf")
	host := doc2.NewResource("host", "CycleProvider")
	host.Add("serverHost", rdf.Lit("mdv.uni-passau.de"))
	host.Add("serverPort", rdf.Lit("7171"))
	host.Add("serverInformation", rdf.Ref("doc2.rdf#info"))
	info := doc2.NewResource("info", "ServerInformation")
	info.Add("memory", rdf.Lit("128"))
	info.Add("cpu", rdf.Lit("900"))
	if _, err := e.RegisterDocument(doc2); err != nil {
		t.Fatal(err)
	}
	if _, err := control.RegisterDocument(doc2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DeleteDocument("doc2.rdf"); err != nil {
		t.Fatal(err)
	}
	if _, err := control.DeleteDocument("doc2.rdf"); err != nil {
		t.Fatal(err)
	}

	// Unsubscribe in an order that exercises both the decrement-only and
	// the sweeping path for shared rules.
	for i := len(subIDs) - 1; i >= 0; i-- {
		if err := e.Unsubscribe(subIDs[i]); err != nil {
			t.Fatalf("unsubscribe %d: %v", subIDs[i], err)
		}
	}

	after := dumpFilterState(t, e)
	if after != before {
		t.Errorf("filter state after unsubscribe differs from pre-subscribe state:\n%s",
			diffDumps(before, after))
	}

	// Future publishes must cost exactly what they cost an engine that never
	// saw the subscriptions: compare the Stats delta of a fresh registration
	// against the control engine (identical document history, no subs).
	preE, preC := e.Stats(), control.Stats()
	doc3 := rdf.NewDocument("doc3.rdf")
	h3 := doc3.NewResource("host", "CycleProvider")
	h3.Add("serverHost", rdf.Lit("probe.uni-passau.de"))
	h3.Add("serverPort", rdf.Lit("5874"))
	if _, err := e.RegisterDocument(doc3); err != nil {
		t.Fatal(err)
	}
	if _, err := control.RegisterDocument(doc3); err != nil {
		t.Fatal(err)
	}
	dE, dC := statsDelta(preE, e.Stats()), statsDelta(preC, control.Stats())
	if dE != dC {
		t.Errorf("publish after unsubscribe did filter work a pristine engine does not:\n  got  %+v\n  want %+v", dE, dC)
	}
}

// statsDelta subtracts the filter-work counters of two snapshots.
func statsDelta(before, after Stats) Stats {
	return Stats{
		FilterRuns:        after.FilterRuns - before.FilterRuns,
		FilterIterations:  after.FilterIterations - before.FilterIterations,
		TriggeringMatches: after.TriggeringMatches - before.TriggeringMatches,
		JoinEvaluations:   after.JoinEvaluations - before.JoinEvaluations,
		JoinMatches:       after.JoinMatches - before.JoinMatches,
	}
}

// diffDumps reports the first few differing lines of two table dumps.
func diffDumps(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	n := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&b, "line %d: want %q, got %q\n", i+1, w, g)
		if n++; n >= 20 {
			b.WriteString("...\n")
			break
		}
	}
	return b.String()
}
