package core

import (
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"mdv/internal/metrics"
)

// Publish pipeline stages (§3.4/§3.5 phases plus the PR 4 concurrency
// seams), each a label on the mdv_publish_stage_seconds histogram. The
// stages are disjoint slices of a registration, so the per-stage sums are
// bounded by mdv_publish_seconds_sum — the invariant the -race coherence
// test checks.
type pubStage int

const (
	stagePrepare pubStage = iota // pre-lock batch decomposition
	stageLockWait
	stageTriggering // filter phase 1: affected triggering rules
	stageJoin       // filter phase 2: dependent join-group fixpoint
	stageChangeset  // buildPublishSet: per-subscriber changeset assembly
	stageCount
)

var stageNames = [stageCount]string{"prepare", "lock_wait", "triggering", "join", "changeset"}

type engineMetrics struct {
	stage     [stageCount]*metrics.Histogram
	publish   *metrics.Histogram
	batchDocs *metrics.Histogram
	// Per-shard triggering instrumentation (nil/empty on serial engines):
	// section duration and dispatch-to-start delay per shard id, plus the
	// per-run max/mean imbalance ratio.
	shardTrig      []*metrics.Histogram
	shardWait      []*metrics.Histogram
	shardImbalance *metrics.Histogram
}

// shardRatioBuckets grade the per-run imbalance ratio: 1.0 is a perfectly
// balanced fan-out, ~N means one of N shards did all the work.
var shardRatioBuckets = []float64{1, 1.25, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// slowOpLog is the -slow-threshold configuration: publishes slower than
// threshold log a per-trigger-table / per-join-group time breakdown.
type slowOpLog struct {
	threshold time.Duration
	logf      func(format string, args ...any)
}

// EnableMetrics attaches the engine (and its SQL database) to the registry.
// Until called, every instrumentation site is a single nil pointer load —
// the disabled-by-default contract the publish benchmarks rely on.
func (e *Engine) EnableMetrics(reg *metrics.Registry) {
	m := &engineMetrics{}
	for s := pubStage(0); s < stageCount; s++ {
		m.stage[s] = reg.Histogram("mdv_publish_stage_seconds",
			"publish pipeline stage duration in seconds",
			metrics.TimeBuckets, metrics.L("stage", stageNames[s]))
	}
	m.publish = reg.Histogram("mdv_publish_seconds",
		"whole-registration duration in seconds (prepare through changeset build)",
		metrics.TimeBuckets)
	m.batchDocs = reg.Histogram("mdv_publish_batch_docs",
		"documents per registration batch", metrics.SizeBuckets)
	reg.Gauge("mdv_engine_shards",
		"triggering shards of this engine (1 = serial path)").SetInt(int64(e.ShardCount()))
	if e.shards != nil {
		n := len(e.shards.shards)
		m.shardTrig = make([]*metrics.Histogram, n)
		m.shardWait = make([]*metrics.Histogram, n)
		for i := 0; i < n; i++ {
			lbl := metrics.L("shard", strconv.Itoa(i))
			m.shardTrig[i] = reg.Histogram("mdv_shard_triggering_seconds",
				"per-shard triggering section duration in seconds", metrics.TimeBuckets, lbl)
			m.shardWait[i] = reg.Histogram("mdv_shard_lock_wait_seconds",
				"delay between shard dispatch and section start (core/lock queueing) in seconds",
				metrics.TimeBuckets, lbl)
		}
		m.shardImbalance = reg.Histogram("mdv_shard_imbalance_ratio",
			"per-run max/mean shard triggering time across all shards (1.0 = perfectly balanced)",
			shardRatioBuckets)
	}
	if e.text != nil {
		reg.GaugeFunc("mdv_text_index_rules",
			"live contains-rule constants in the substring index", func() float64 {
				e.mu.RLock()
				defer e.mu.RUnlock()
				return float64(e.text.ruleCount())
			})
		reg.GaugeFunc("mdv_text_index_nodes",
			"states across the compiled per-cohort Aho-Corasick automata "+
				"(cohorts mutated since their last scan report 0 until recompiled)",
			func() float64 {
				e.mu.RLock()
				defer e.mu.RUnlock()
				return float64(e.text.nodeCount())
			})
		reg.SampleFunc("mdv_text_index_scans_total",
			"atom values scanned through a cohort automaton",
			metrics.TypeCounter, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(e.text.scans.Load())}}
			})
		reg.SampleFunc("mdv_text_index_matches_total",
			"candidate (rule, atom) pairs emitted by the substring index",
			metrics.TypeCounter, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(e.text.matches.Load())}}
			})
	}
	reg.SampleFunc("mdv_engine_stat",
		"engine work counters (core.Stats), by counter name",
		metrics.TypeCounter, func() []metrics.Sample {
			s := e.Stats()
			mk := func(name string, v int) metrics.Sample {
				return metrics.Sample{Labels: []metrics.Label{metrics.L("name", name)}, Value: float64(v)}
			}
			return []metrics.Sample{
				mk("documents_registered", s.DocumentsRegistered),
				mk("resources_registered", s.ResourcesRegistered),
				mk("filter_runs", s.FilterRuns),
				mk("filter_iterations", s.FilterIterations),
				mk("triggering_matches", s.TriggeringMatches),
				mk("join_evaluations", s.JoinEvaluations),
				mk("join_matches", s.JoinMatches),
				mk("atomic_rules_shared", s.AtomicRulesShared),
				mk("atomic_rules_created", s.AtomicRulesCreated),
				mk("sharded_filter_runs", s.ShardedFilterRuns),
				mk("shard_sections_run", s.ShardSectionsRun),
			}
		})
	e.obs.met.Store(m)
	e.db.EnableMetrics(reg)
}

// SetSlowOpLog enables (or, with threshold <= 0, disables) the slow-publish
// log: registrations slower than threshold log which trigger tables and
// join groups dominated the filter run.
func (e *Engine) SetSlowOpLog(threshold time.Duration, logf func(format string, args ...any)) {
	if threshold <= 0 || logf == nil {
		e.obs.slow.Store(nil)
		return
	}
	e.obs.slow.Store(&slowOpLog{threshold: threshold, logf: logf})
}

// observeShards records the per-shard section metrics of one sharded
// triggering run and its imbalance ratio: max shard busy time over the mean
// across ALL shards (idle shards count as zero work, so a run whose atoms
// all land on one of four shards reads ~4). Called by the merge barrier on
// the coordinator only.
func (e *Engine) observeShards(runs []shardRun) {
	m := e.obs.met.Load()
	if m == nil || len(m.shardTrig) == 0 {
		return
	}
	var max, sum time.Duration
	for i := range runs {
		run := &runs[i]
		if run.atoms == 0 {
			continue
		}
		m.shardTrig[i].Observe(run.busy.Seconds())
		m.shardWait[i].Observe(run.wait.Seconds())
		sum += run.busy
		if run.busy > max {
			max = run.busy
		}
	}
	if sum > 0 {
		mean := sum.Seconds() / float64(len(runs))
		m.shardImbalance.Observe(max.Seconds() / mean)
	}
}

// observeStage records one pipeline stage duration.
func (e *Engine) observeStage(s pubStage, t0 time.Time) {
	if m := e.obs.met.Load(); m != nil {
		m.stage[s].ObserveSince(t0)
	}
}

// publishTrace accumulates per-statement attribution for one registration.
// It lives on the engine and is only touched under the exclusive lock, so
// plain maps suffice.
type publishTrace struct {
	trig  map[string]time.Duration // trigger table (EQ, LT, ...) -> time
	group map[int64]time.Duration  // join group id -> time
}

// traceTrig attributes trigger-statement time when a trace is active.
func (e *Engine) traceTrig(op string, d time.Duration) {
	if e.obs.trace != nil {
		e.obs.trace.trig[op] += d
	}
}

// traceGroup attributes join-group evaluation time when a trace is active.
func (e *Engine) traceGroup(gid int64, d time.Duration) {
	if e.obs.trace != nil {
		e.obs.trace.group[gid] += d
	}
}

// logSlowPublish emits the slow-operation breakdown for one registration.
func logSlowPublish(sl *slowOpLog, docs int, total time.Duration, tr *publishTrace) {
	type item struct {
		name string
		d    time.Duration
	}
	var items []item
	for op, d := range tr.trig {
		items = append(items, item{"trigger:" + op, d})
	}
	for gid, d := range tr.group {
		items = append(items, item{fmt.Sprintf("group:%d", gid), d})
	}
	sort.Slice(items, func(a, b int) bool { return items[a].d > items[b].d })
	if len(items) > 5 {
		items = items[:5]
	}
	parts := ""
	for _, it := range items {
		parts += fmt.Sprintf(" %s=%s", it.name, it.d)
	}
	sl.logf("core: slow publish: %d docs in %s (threshold %s); dominated by:%s",
		docs, total, sl.threshold, parts)
}

// Engine metric/slow-log state, split out so engine.go stays focused on
// the filter algorithm. Both pointers are atomic: they are read outside
// the engine lock (prepare and lock-wait stages run pre-lock).
type engineObs struct {
	met  atomic.Pointer[engineMetrics]
	slow atomic.Pointer[slowOpLog]
	// trace is non-nil only while a slow-logged registration is running;
	// guarded by the exclusive engine lock.
	trace *publishTrace
}
