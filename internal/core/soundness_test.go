package core_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mdv/internal/core"
	"mdv/internal/query"
	"mdv/internal/rdb"
	"mdv/internal/rdb/sql"
	"mdv/internal/rdf"
	"mdv/internal/rules"
)

// The soundness property of the whole filter pipeline: after any sequence
// of document registrations, updates, and deletions, the engine's
// materialized matches for every subscription equal a from-scratch
// evaluation of the subscription rule over the current metadata. This is
// the paper's implicit correctness claim for the incremental algorithm
// (§3.4/§3.5) checked by differential testing against a naive evaluator.

func soundnessSchema() *rdf.Schema {
	s := rdf.NewSchema()
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverHost", Type: rdf.TypeString})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverPort", Type: rdf.TypeInteger})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "synthValue", Type: rdf.TypeInteger})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{
		Name: "serverInformation", Type: rdf.TypeResource, RefClass: "ServerInformation", RefKind: rdf.StrongRef})
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{Name: "memory", Type: rdf.TypeInteger})
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{Name: "cpu", Type: rdf.TypeInteger})
	return s
}

// randomRule draws one subscription rule.
func randomRule(rng *rand.Rand) string {
	hostDomains := []string{"uni-passau.de", "tum.de", "example.org"}
	switch rng.Intn(8) {
	case 0:
		return `search CycleProvider c register c`
	case 1:
		return fmt.Sprintf(`search CycleProvider c register c where c.serverPort %s %d`,
			randomOp(rng), rng.Intn(40))
	case 2:
		return fmt.Sprintf(`search CycleProvider c register c where c.serverHost contains '%s'`,
			hostDomains[rng.Intn(len(hostDomains))])
	case 3:
		return fmt.Sprintf(`search CycleProvider c register c where c.serverInformation.memory %s %d`,
			randomOp(rng), rng.Intn(40))
	case 4:
		return fmt.Sprintf(
			`search CycleProvider c register c where c.serverInformation.memory %s %d and c.serverInformation.cpu %s %d`,
			randomOp(rng), rng.Intn(40), randomOp(rng), rng.Intn(40))
	case 5:
		return fmt.Sprintf(`search CycleProvider c register c where c = 'doc%d.rdf#host'`, rng.Intn(12))
	case 6:
		return fmt.Sprintf(
			`search CycleProvider c register c where c.serverPort %s %d or c.serverInformation.cpu %s %d`,
			randomOp(rng), rng.Intn(40), randomOp(rng), rng.Intn(40))
	default:
		return fmt.Sprintf(
			`search CycleProvider c, ServerInformation s register s where c.serverInformation = s and c.serverPort %s %d`,
			randomOp(rng), rng.Intn(40))
	}
}

func randomOp(rng *rand.Rand) string {
	return []string{"=", "!=", "<", "<=", ">", ">="}[rng.Intn(6)]
}

// randomDoc draws document i's content. References are sometimes
// cross-document (possibly dangling), which exercises the hardest part of
// the three-phase update handling: a join match whose support spans
// documents that change independently.
func randomDoc(rng *rand.Rand, i int) *rdf.Document {
	domains := []string{"uni-passau.de", "tum.de", "example.org"}
	doc := rdf.NewDocument(fmt.Sprintf("doc%d.rdf", i))
	host := doc.NewResource("host", "CycleProvider")
	host.Add("serverHost", rdf.Lit(fmt.Sprintf("h%d.%s", i, domains[rng.Intn(len(domains))])))
	host.Add("serverPort", rdf.Lit(fmt.Sprint(rng.Intn(40))))
	host.Add("synthValue", rdf.Lit(fmt.Sprint(rng.Intn(40))))
	switch rng.Intn(5) {
	case 0: // no server information at all
	case 1: // cross-document reference (may dangle)
		host.Add("serverInformation", rdf.Ref(fmt.Sprintf("doc%d.rdf#info", rng.Intn(12))))
		info := doc.NewResource("info", "ServerInformation")
		info.Add("memory", rdf.Lit(fmt.Sprint(rng.Intn(40))))
		info.Add("cpu", rdf.Lit(fmt.Sprint(rng.Intn(40))))
	default: // in-document reference, the Figure 1 shape
		host.Add("serverInformation", rdf.Ref(doc.QualifyID("info")))
		info := doc.NewResource("info", "ServerInformation")
		info.Add("memory", rdf.Lit(fmt.Sprint(rng.Intn(40))))
		info.Add("cpu", rdf.Lit(fmt.Sprint(rng.Intn(40))))
	}
	return doc
}

// reference evaluates a subscription rule from scratch over the current
// documents, using the query translator over a freshly built statement
// store.
type reference struct {
	schema *rdf.Schema
	docs   map[string]*rdf.Document
}

func (ref *reference) matches(t *testing.T, ruleText string) []string {
	t.Helper()
	db := sql.Open()
	for _, stmt := range []string{
		`CREATE TABLE Cache (uri_reference TEXT PRIMARY KEY, class TEXT NOT NULL, local BOOL NOT NULL)`,
		`CREATE TABLE CacheStatements (uri_reference TEXT NOT NULL, class TEXT NOT NULL,
			property TEXT NOT NULL, value TEXT NOT NULL, is_ref BOOL NOT NULL)`,
		`CREATE INDEX idx_cstmt_uri ON CacheStatements (uri_reference, property)`,
		`CREATE INDEX idx_cstmt_cpv ON CacheStatements (class, property, value)`,
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	for _, doc := range ref.docs {
		for _, a := range doc.Statements() {
			if a.Property == rdf.SubjectProperty {
				db.MustExec(`INSERT INTO Cache (uri_reference, class, local) VALUES (?, ?, FALSE)`,
					rdb.NewText(a.URIRef), rdb.NewText(a.Class))
			}
			db.MustExec(`INSERT INTO CacheStatements (uri_reference, class, property, value, is_ref)
				VALUES (?, ?, ?, ?, ?)`,
				rdb.NewText(a.URIRef), rdb.NewText(a.Class), rdb.NewText(a.Property),
				rdb.NewText(a.Value), rdb.NewBool(a.IsRef))
		}
	}
	r, err := rules.Parse(ruleText)
	if err != nil {
		t.Fatal(err)
	}
	normalized, err := rules.Normalize(r, ref.schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var out []string
	for _, nr := range normalized {
		text, params, err := query.Translate(nr, ref.schema)
		if err != nil {
			t.Fatal(err)
		}
		err = db.QueryFunc(text, params, func(row []rdb.Value) error {
			if uri := row[0].Str; !seen[uri] {
				seen[uri] = true
				out = append(out, uri)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(out)
	return out
}

func engineMatches(t *testing.T, e *core.Engine, subID int64) []string {
	t.Helper()
	rs, err := e.MatchingResources(subID)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.URIRef
	}
	return out
}

// TestFilterSoundnessRandomized drives randomized workloads through the
// engine and checks the materialized matches against the reference after
// every mutation batch.
func TestFilterSoundnessRandomized(t *testing.T) {
	seeds := []int64{1, 7, 42, 99, 1234, 77777}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			schema := soundnessSchema()
			e, err := core.NewEngine(schema)
			if err != nil {
				t.Fatal(err)
			}
			ref := &reference{schema: schema, docs: map[string]*rdf.Document{}}

			// Random subscriptions (registered before and between data).
			type sub struct {
				id   int64
				rule string
			}
			var subs []sub
			addSub := func() {
				rule := randomRule(rng)
				id, _, err := e.Subscribe("lmr", rule)
				if err != nil {
					t.Fatalf("subscribe %q: %v", rule, err)
				}
				subs = append(subs, sub{id: id, rule: rule})
			}
			for i := 0; i < 8; i++ {
				addSub()
			}

			check := func(step string) {
				t.Helper()
				for _, s := range subs {
					got := engineMatches(t, e, s.id)
					want := ref.matches(t, s.rule)
					if strings.Join(got, ",") != strings.Join(want, ",") {
						t.Fatalf("%s: rule %q:\n engine %v\n naive  %v",
							step, s.rule, got, want)
					}
				}
			}

			nextDoc := 0
			for step := 0; step < 20; step++ {
				switch op := rng.Intn(10); {
				case op < 5 || len(ref.docs) == 0: // register a fresh batch
					n := 1 + rng.Intn(3)
					var docs []*rdf.Document
					for i := 0; i < n; i++ {
						d := randomDoc(rng, nextDoc)
						nextDoc++
						docs = append(docs, d)
						ref.docs[d.URI] = d
					}
					if _, err := e.RegisterDocuments(docs); err != nil {
						t.Fatal(err)
					}
					check(fmt.Sprintf("step %d register %d", step, n))
				case op < 8: // update an existing document
					uris := sortedKeys(ref.docs)
					uri := uris[rng.Intn(len(uris))]
					var num int
					fmt.Sscanf(uri, "doc%d.rdf", &num)
					d := randomDoc(rng, num)
					ref.docs[uri] = d
					if _, err := e.RegisterDocument(d); err != nil {
						t.Fatal(err)
					}
					check(fmt.Sprintf("step %d update %s", step, uri))
				case op < 9: // delete a document
					uris := sortedKeys(ref.docs)
					uri := uris[rng.Intn(len(uris))]
					delete(ref.docs, uri)
					if _, err := e.DeleteDocument(uri); err != nil {
						t.Fatal(err)
					}
					check(fmt.Sprintf("step %d delete %s", step, uri))
				default: // register another subscription mid-stream
					addSub()
					check(fmt.Sprintf("step %d subscribe", step))
				}
			}
		})
	}
}

func sortedKeys(m map[string]*rdf.Document) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
