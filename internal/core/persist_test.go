package core

import (
	"bytes"
	"strings"
	"testing"

	"mdv/internal/rdf"
)

// TestEngineSnapshotRoundTrip: a saved engine restores with its metadata,
// rules, materializations, subscriptions, and named rules intact, and
// continues to filter correctly.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterNamedRule("Passau",
		`search CycleProvider c register c where c.serverHost contains 'uni-passau.de'`); err != nil {
		t.Fatal(err)
	}
	subID, _, err := e.Subscribe("lmr1", example331)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterDocument(figure1Doc()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, paperSchema())
	if err != nil {
		t.Fatal(err)
	}

	// State survived.
	if restored.AtomicRuleCount() != e.AtomicRuleCount() {
		t.Errorf("atomic rules: %d vs %d", restored.AtomicRuleCount(), e.AtomicRuleCount())
	}
	if restored.ResourceCount() != 2 {
		t.Errorf("resources = %d", restored.ResourceCount())
	}
	ends, err := restored.EndRulesOf(subID)
	if err != nil || len(ends) != 1 {
		t.Fatalf("end rules after restore: %v %v", ends, err)
	}
	uris, _ := restored.RuleResultsOf(ends[0])
	if len(uris) != 1 || uris[0] != "doc.rdf#host" {
		t.Errorf("materialization after restore: %v", uris)
	}
	if got := restored.NamedRules(); len(got) != 1 || got[0] != "Passau" {
		t.Errorf("named rules after restore: %v", got)
	}

	// The restored engine keeps filtering: a new document and a new
	// subscription work, and fresh ids do not collide with restored ones.
	doc2 := rdf.NewDocument("doc2.rdf")
	cp := doc2.NewResource("host", "CycleProvider")
	cp.Add("serverHost", rdf.Lit("x.uni-passau.de"))
	cp.Add("serverInformation", rdf.Ref("doc2.rdf#info"))
	info := doc2.NewResource("info", "ServerInformation")
	info.Add("memory", rdf.Lit("128"))
	info.Add("cpu", rdf.Lit("900"))
	ps, err := restored.RegisterDocument(doc2)
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil || len(cs.Upserts) != 1 || cs.Upserts[0].Resource.URIRef != "doc2.rdf#host" {
		t.Fatalf("restored engine does not filter: %+v", cs)
	}
	sub2, _, err := restored.Subscribe("lmr2", `search Passau p register p where p.serverPort >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	if sub2 <= subID {
		t.Errorf("subscription id collision after restore: %d <= %d", sub2, subID)
	}

	// Updates still run the three-phase machinery correctly.
	doc2b := doc2.Clone()
	info2, _ := doc2b.Find("doc2.rdf#info")
	info2.Set("memory", rdf.Lit("8"))
	ps, err = restored.RegisterDocument(doc2b)
	if err != nil {
		t.Fatal(err)
	}
	if cs := ps.Changesets["lmr1"]; cs == nil || len(cs.Removals) != 1 {
		t.Errorf("restored engine update handling: %+v", cs)
	}
}

// TestLoadRejectsNonEngineSnapshot: a plain database snapshot without the
// engine tables is rejected.
func TestLoadRejectsNonEngineSnapshot(t *testing.T) {
	if _, err := Load(strings.NewReader("garbage"), paperSchema()); err == nil {
		t.Error("garbage accepted")
	}
}
