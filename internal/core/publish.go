package core

import (
	"sort"

	"mdv/internal/rdb"
	"mdv/internal/rdf"
)

// Upsert is a resource delivered to a subscriber because it newly or still
// matches one of its subscriptions, together with the strong-reference
// closure resources that must travel with it (paper §2.4).
type Upsert struct {
	Resource *rdf.Resource
	// SubIDs are the subscriber's subscriptions this resource matches; the
	// LMR uses them as cache credits for its garbage collector.
	SubIDs []int64
	// Closure holds the resources reached from Resource over strong
	// references, transitively.
	Closure []*rdf.Resource
}

// Removal tells a subscriber that a resource no longer matches one of its
// subscriptions. The LMR drops the credit and garbage-collects the resource
// if nothing else holds it (§3.5 "true candidate resources").
type Removal struct {
	URIRef string
	SubID  int64
}

// Changeset is what an MDP publishes to one subscriber after a batch.
type Changeset struct {
	Upserts  []Upsert
	Removals []Removal
	// ClosureUpserts carry new versions of resources the subscriber may
	// hold only via strong references (they match none of its rules).
	ClosureUpserts []*rdf.Resource
	// ForcedDeletes are resources deleted at the source; the subscriber
	// must drop them regardless of credits.
	ForcedDeletes []string
}

// Empty reports whether the changeset carries nothing.
func (c *Changeset) Empty() bool {
	return len(c.Upserts) == 0 && len(c.Removals) == 0 &&
		len(c.ClosureUpserts) == 0 && len(c.ForcedDeletes) == 0
}

// PublishSet maps subscriber names to their changesets for one batch.
type PublishSet struct {
	Changesets map[string]*Changeset
}

func newPublishSet() *PublishSet {
	return &PublishSet{Changesets: make(map[string]*Changeset)}
}

func (p *PublishSet) changesetFor(subscriber string) *Changeset {
	cs := p.Changesets[subscriber]
	if cs == nil {
		cs = &Changeset{}
		p.Changesets[subscriber] = cs
	}
	return cs
}

// Subscribers returns the subscribers with non-empty changesets, sorted.
func (p *PublishSet) Subscribers() []string {
	out := make([]string, 0, len(p.Changesets))
	for s, cs := range p.Changesets {
		if !cs.Empty() {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// buildPublishSet turns the before/after match sets of a registration batch
// into per-subscriber changesets.
func (e *Engine) buildPublishSet(before, after *matchSet, updated, deleted []*rdf.Resource,
	holders map[string]map[string]bool) (*PublishSet, error) {
	ps := newPublishSet()

	// Upserts: after-matches of subscribed end rules.
	type pendingUpsert struct {
		subscriber string
		subIDs     map[int64]bool
	}
	upserts := map[string]map[string]*pendingUpsert{} // subscriber -> uri -> entry
	for rule := range after.byRule {
		subs, err := e.subscribersOf(rule)
		if err != nil {
			return nil, err
		}
		if len(subs) == 0 {
			continue
		}
		for _, uri := range after.uris(rule) {
			for _, s := range subs {
				byURI := upserts[s.subscriber]
				if byURI == nil {
					byURI = map[string]*pendingUpsert{}
					upserts[s.subscriber] = byURI
				}
				entry := byURI[uri]
				if entry == nil {
					entry = &pendingUpsert{subscriber: s.subscriber, subIDs: map[int64]bool{}}
					byURI[uri] = entry
				}
				entry.subIDs[s.subID] = true
			}
		}
	}
	for subscriber, byURI := range upserts {
		cs := ps.changesetFor(subscriber)
		uris := make([]string, 0, len(byURI))
		for uri := range byURI {
			uris = append(uris, uri)
		}
		sort.Strings(uris)
		for _, uri := range uris {
			entry := byURI[uri]
			up, err := e.buildUpsert(uri, entry.subIDs)
			if err != nil {
				return nil, err
			}
			if up != nil {
				cs.Upserts = append(cs.Upserts, *up)
			}
		}
	}

	// Removals: before-matches of subscribed end rules that are no longer
	// materialized (the "true candidates" of §3.5).
	for rule := range before.byRule {
		subs, err := e.subscribersOf(rule)
		if err != nil {
			return nil, err
		}
		if len(subs) == 0 {
			continue
		}
		for _, uri := range before.uris(rule) {
			still, err := e.hasResult(rule, uri)
			if err != nil {
				return nil, err
			}
			if still {
				continue // wrong candidate: it still matches
			}
			for _, s := range subs {
				cs := ps.changesetFor(s.subscriber)
				cs.Removals = append(cs.Removals, Removal{URIRef: uri, SubID: s.subID})
			}
		}
	}

	// Closure updates: an updated resource may be cached by subscribers
	// only through strong references from rule-matched resources. Walk the
	// strong-reference graph backwards to find them.
	for _, r := range updated {
		for subscriber := range holders[r.URIRef] {
			// Skip subscribers already receiving the resource as an upsert.
			if byURI := upserts[subscriber]; byURI != nil && byURI[r.URIRef] != nil {
				continue
			}
			cs := ps.changesetFor(subscriber)
			cur, ok, err := e.getResourceLocked(r.URIRef)
			if err != nil {
				return nil, err
			}
			if ok {
				cs.ClosureUpserts = append(cs.ClosureUpserts, cur)
			}
		}
	}

	// Forced deletes: resources removed at the source are dropped
	// everywhere. Deliver to subscribers that had any before-match for the
	// resource or hold it via strong references.
	for _, r := range deleted {
		targets := map[string]bool{}
		for rule := range before.byRule {
			if !before.has(rule, r.URIRef) {
				continue
			}
			subs, err := e.subscribersOf(rule)
			if err != nil {
				return nil, err
			}
			for _, s := range subs {
				targets[s.subscriber] = true
			}
		}
		for subscriber := range holders[r.URIRef] {
			targets[subscriber] = true
		}
		for subscriber := range targets {
			cs := ps.changesetFor(subscriber)
			cs.ForcedDeletes = append(cs.ForcedDeletes, r.URIRef)
		}
	}

	// Deterministic ordering of removal/delete lists.
	for _, cs := range ps.Changesets {
		sort.Slice(cs.Removals, func(a, b int) bool {
			if cs.Removals[a].URIRef != cs.Removals[b].URIRef {
				return cs.Removals[a].URIRef < cs.Removals[b].URIRef
			}
			return cs.Removals[a].SubID < cs.Removals[b].SubID
		})
		sort.Strings(cs.ForcedDeletes)
		sort.Slice(cs.ClosureUpserts, func(a, b int) bool {
			return cs.ClosureUpserts[a].URIRef < cs.ClosureUpserts[b].URIRef
		})
	}
	return ps, nil
}

// buildUpsert assembles an upsert with its strong-reference closure.
func (e *Engine) buildUpsert(uri string, subIDs map[int64]bool) (*Upsert, error) {
	res, ok, err := e.getResourceLocked(uri)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil // raced with deletion inside the batch
	}
	ids := make([]int64, 0, len(subIDs))
	for id := range subIDs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	closure, err := e.strongClosure(res)
	if err != nil {
		return nil, err
	}
	return &Upsert{Resource: res, SubIDs: ids, Closure: closure}, nil
}

// strongClosure returns the resources reachable from res over strong
// references, transitively, excluding res itself (paper §2.4: "resources
// referenced by [strong references] are always transmitted together with
// the referencing resource").
func (e *Engine) strongClosure(res *rdf.Resource) ([]*rdf.Resource, error) {
	visited := map[string]bool{res.URIRef: true}
	var out []*rdf.Resource
	queue := []*rdf.Resource{res}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range cur.Props {
			if p.Value.Kind != rdf.ResourceRef {
				continue
			}
			if !e.schema.IsStrongReference(cur.Class, p.Name) {
				continue
			}
			target := p.Value.Ref
			if visited[target] {
				continue
			}
			visited[target] = true
			tres, ok, err := e.getResourceLocked(target)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue // dangling reference; nothing to transmit
			}
			out = append(out, tres)
			queue = append(queue, tres)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].URIRef < out[b].URIRef })
	return out, nil
}

// strongHolders finds the subscribers that may cache the given resource via
// strong references: it walks incoming strong references transitively until
// it reaches resources matching subscribed end rules, and collects those
// rules' subscribers.
func (e *Engine) strongHolders(uri string) (map[string]bool, error) {
	subscribers := map[string]bool{}
	visited := map[string]bool{uri: true}
	queue := []string{uri}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		rows, err := e.prep.strongRefsTo.Query(rdb.NewText(cur))
		if err != nil {
			return nil, err
		}
		for _, row := range rows.Data {
			referrer, class, prop := row[0].Str, row[1].Str, row[2].Str
			if !e.schema.IsStrongReference(class, prop) {
				continue
			}
			if visited[referrer] {
				continue
			}
			visited[referrer] = true
			// Does the referrer match any subscribed end rule?
			subs, err := e.subscribedRuleMatches(referrer)
			if err != nil {
				return nil, err
			}
			for s := range subs {
				subscribers[s] = true
			}
			queue = append(queue, referrer)
		}
	}
	return subscribers, nil
}

// subscribedRuleMatches returns the subscribers whose end rules the
// resource currently matches.
func (e *Engine) subscribedRuleMatches(uri string) (map[string]bool, error) {
	rows, err := e.db.Query(`
		SELECT s.subscriber FROM RuleResults rr, SubscriptionEndRules ser, Subscriptions s
		WHERE rr.uri_reference = ? AND ser.end_rule = rr.rule_id AND s.sub_id = ser.sub_id`,
		rdb.NewText(uri))
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, row := range rows.Data {
		out[row[0].Str] = true
	}
	return out, nil
}
