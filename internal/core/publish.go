package core

import (
	"sort"
	"strings"

	"mdv/internal/rdb"
	"mdv/internal/rdf"
)

// Upsert is a resource delivered to a subscriber because it newly or still
// matches one of its subscriptions, together with the strong-reference
// closure resources that must travel with it (paper §2.4).
type Upsert struct {
	Resource *rdf.Resource
	// SubIDs are the subscriptions this resource matches; the LMR uses them
	// as cache credits for its garbage collector. On a shared group
	// changeset this is the union across members — Changeset.MemberCredits
	// says which of them belong to which member.
	SubIDs []int64
	// Closure holds the resources reached from Resource over strong
	// references, transitively.
	Closure []*rdf.Resource
}

// Removal tells a subscriber that a resource no longer matches one of its
// subscriptions. The LMR drops the credit and garbage-collects the resource
// if nothing else holds it (§3.5 "true candidate resources").
type Removal struct {
	URIRef string
	SubID  int64
}

// Changeset is what an MDP publishes after a batch — to one subscriber, or
// to every member of an interest group when their changesets coincide.
type Changeset struct {
	Upserts  []Upsert
	Removals []Removal
	// ClosureUpserts carry new versions of resources the subscriber may
	// hold only via strong references (they match none of its rules).
	ClosureUpserts []*rdf.Resource
	// ForcedDeletes are resources deleted at the source; the subscriber
	// must drop them regardless of credits.
	ForcedDeletes []string
	// MemberCredits is set only on changesets shared by a multi-member
	// interest group: it maps each member subscriber to the subscription
	// IDs (credits) in this changeset that belong to it. A receiver applies
	// only its own credits and removal entries. Nil means the changeset was
	// built for a single receiver, which applies everything (the pre-group
	// wire format).
	MemberCredits map[string][]int64 `json:"member_credits,omitempty"`
}

// Empty reports whether the changeset carries nothing.
func (c *Changeset) Empty() bool {
	return len(c.Upserts) == 0 && len(c.Removals) == 0 &&
		len(c.ClosureUpserts) == 0 && len(c.ForcedDeletes) == 0
}

// PublishGroup is one interest group of a batch: subscribers whose
// changesets for the batch are identical, sharing a single Changeset.
type PublishGroup struct {
	// Members are the group's subscribers, sorted.
	Members []string
	// Changeset is shared by every member. MemberCredits is non-nil iff
	// the group has more than one member.
	Changeset *Changeset
}

// PublishSet carries the changesets of one batch, grouped by interest.
// Changesets indexes the same changesets per subscriber (members of one
// group alias one *Changeset) for callers that address a single subscriber.
type PublishSet struct {
	Changesets map[string]*Changeset
	// Groups holds the distinct non-empty changesets with their members,
	// ordered by first member. Nil on hand-constructed sets that fill only
	// Changesets; GroupList synthesizes single-member groups for those.
	Groups []PublishGroup
}

func newPublishSet() *PublishSet {
	return &PublishSet{Changesets: make(map[string]*Changeset)}
}

// NewSingleSubscriberSet wraps one subscriber's changeset (initial fills,
// replay paths) as a PublishSet.
func NewSingleSubscriberSet(subscriber string, cs *Changeset) *PublishSet {
	ps := &PublishSet{Changesets: map[string]*Changeset{subscriber: cs}}
	if cs != nil && !cs.Empty() {
		ps.Groups = []PublishGroup{{Members: []string{subscriber}, Changeset: cs}}
	}
	return ps
}

// Subscribers returns the subscribers with non-empty changesets, sorted.
func (p *PublishSet) Subscribers() []string {
	out := make([]string, 0, len(p.Changesets))
	for s, cs := range p.Changesets {
		if !cs.Empty() {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// GroupList returns the batch's delivery groups. Engine-built sets return
// their computed groups; sets constructed by hand with only the Changesets
// map get one single-member group per non-empty changeset.
func (p *PublishSet) GroupList() []PublishGroup {
	if p.Groups != nil {
		return p.Groups
	}
	subs := p.Subscribers()
	out := make([]PublishGroup, 0, len(subs))
	for _, s := range subs {
		out = append(out, PublishGroup{Members: []string{s}, Changeset: p.Changesets[s]})
	}
	return out
}

// interest is one subscriber's raw match outcome for a batch, collected
// before any changeset is materialized: URI and subscription-ID sets only.
// Its signature decides interest-group membership.
type interest struct {
	upserts  map[string]map[int64]bool // uri -> subIDs now matching
	removals map[string]map[int64]bool // uri -> subIDs no longer matching
	closures map[string]bool           // uris updated behind strong refs
	forced   map[string]bool           // uris force-deleted at the source
}

func (in *interest) upsertIDs(uri string) map[int64]bool {
	ids := in.upserts[uri]
	if ids == nil {
		ids = map[int64]bool{}
		in.upserts[uri] = ids
	}
	return ids
}

func (in *interest) removalIDs(uri string) map[int64]bool {
	ids := in.removals[uri]
	if ids == nil {
		ids = map[int64]bool{}
		in.removals[uri] = ids
	}
	return ids
}

// signature fingerprints the changeset this interest will produce. Two
// subscribers with equal signatures receive byte-identical changesets up to
// credit ownership (per-URI subID sets may differ; the union travels with
// MemberCredits recording ownership), so they form one interest group.
func (in *interest) signature() string {
	var b strings.Builder
	section := func(uris map[string]bool) {
		keys := make([]string, 0, len(uris))
		for u := range uris {
			keys = append(keys, u)
		}
		sort.Strings(keys)
		for _, u := range keys {
			b.WriteString(u)
			b.WriteByte(0x1f)
		}
		b.WriteByte(0x1e)
	}
	up := make(map[string]bool, len(in.upserts))
	for u := range in.upserts {
		up[u] = true
	}
	rm := make(map[string]bool, len(in.removals))
	for u := range in.removals {
		rm[u] = true
	}
	section(up)
	section(rm)
	section(in.closures)
	section(in.forced)
	return b.String()
}

// builtUpsert caches the expensive half of an upsert — the resource fetch
// and its strong-reference closure — shared across every group (and every
// subscriber) that delivers the URI in this batch.
type builtUpsert struct {
	res     *rdf.Resource
	closure []*rdf.Resource
}

// buildPublishSet turns the before/after match sets of a registration batch
// into changesets, one per interest group: subscribers whose batch outcome
// is identical share a single changeset built once (compute-once), with the
// union of their credits and a MemberCredits ownership map.
func (e *Engine) buildPublishSet(before, after *matchSet, updated, deleted []*rdf.Resource,
	holders map[string]map[string]bool) (*PublishSet, error) {
	ps := newPublishSet()

	// Phase 1: collect per-subscriber interests (URI/ID sets only; nothing
	// expensive is built yet).
	interests := map[string]*interest{}
	interestOf := func(subscriber string) *interest {
		in := interests[subscriber]
		if in == nil {
			in = &interest{
				upserts:  map[string]map[int64]bool{},
				removals: map[string]map[int64]bool{},
				closures: map[string]bool{},
				forced:   map[string]bool{},
			}
			interests[subscriber] = in
		}
		return in
	}

	// Upserts: after-matches of subscribed end rules.
	for rule := range after.byRule {
		subs, err := e.subscribersOf(rule)
		if err != nil {
			return nil, err
		}
		if len(subs) == 0 {
			continue
		}
		for _, uri := range after.uris(rule) {
			for _, s := range subs {
				interestOf(s.subscriber).upsertIDs(uri)[s.subID] = true
			}
		}
	}

	// Removals: before-matches of subscribed end rules that are no longer
	// materialized (the "true candidates" of §3.5).
	for rule := range before.byRule {
		subs, err := e.subscribersOf(rule)
		if err != nil {
			return nil, err
		}
		if len(subs) == 0 {
			continue
		}
		for _, uri := range before.uris(rule) {
			still, err := e.hasResult(rule, uri)
			if err != nil {
				return nil, err
			}
			if still {
				continue // wrong candidate: it still matches
			}
			for _, s := range subs {
				interestOf(s.subscriber).removalIDs(uri)[s.subID] = true
			}
		}
	}

	// Closure updates: an updated resource may be cached by subscribers
	// only through strong references from rule-matched resources.
	for _, r := range updated {
		for subscriber := range holders[r.URIRef] {
			in := interestOf(subscriber)
			// Skip subscribers already receiving the resource as an upsert.
			if in.upserts[r.URIRef] != nil {
				continue
			}
			in.closures[r.URIRef] = true
		}
	}

	// Forced deletes: resources removed at the source are dropped
	// everywhere. Deliver to subscribers that had any before-match for the
	// resource or hold it via strong references.
	for _, r := range deleted {
		for rule := range before.byRule {
			if !before.has(rule, r.URIRef) {
				continue
			}
			subs, err := e.subscribersOf(rule)
			if err != nil {
				return nil, err
			}
			for _, s := range subs {
				interestOf(s.subscriber).forced[r.URIRef] = true
			}
		}
		for subscriber := range holders[r.URIRef] {
			interestOf(subscriber).forced[r.URIRef] = true
		}
	}

	// Phase 2: group subscribers by interest signature. The ablation
	// (DisableInterestCoalescing) keys by subscriber name, reproducing the
	// per-subscriber build path end to end.
	members := map[string][]string{} // signature -> member subscribers
	for subscriber, in := range interests {
		key := in.signature()
		if e.opts.DisableInterestCoalescing {
			key = "\x00sub\x00" + subscriber
		}
		members[key] = append(members[key], subscriber)
	}
	keys := make([]string, 0, len(members))
	for key := range members {
		sort.Strings(members[key])
		keys = append(keys, key)
	}
	// Deterministic group order: by first member (each subscriber belongs
	// to exactly one group, so first members are unique).
	sort.Slice(keys, func(a, b int) bool { return members[keys[a]][0] < members[keys[b]][0] })

	// Phase 3: build each group's changeset once. The URI-level caches are
	// shared across groups, so a resource delivered to several groups is
	// fetched and closure-walked a single time per batch; the ablation gets
	// fresh caches per group to preserve the old per-subscriber cost.
	sharedUpserts := map[string]*builtUpsert{}
	sharedClosures := map[string]*rdf.Resource{}
	for _, key := range keys {
		group := members[key]
		upCache, closCache := sharedUpserts, sharedClosures
		if e.opts.DisableInterestCoalescing {
			upCache, closCache = map[string]*builtUpsert{}, map[string]*rdf.Resource{}
		}
		cs, err := e.buildGroupChangeset(group, interests, upCache, closCache)
		if err != nil {
			return nil, err
		}
		e.stats.ChangesetsBuilt++
		for _, subscriber := range group {
			ps.Changesets[subscriber] = cs
		}
		if !cs.Empty() {
			ps.Groups = append(ps.Groups, PublishGroup{Members: group, Changeset: cs})
			e.stats.PublishGroups++
			e.stats.GroupedSubscribers += len(group)
		}
	}
	return ps, nil
}

// buildGroupChangeset materializes the shared changeset of one interest
// group. All members have equal URI sets in every section (same signature);
// per-URI subscription IDs are unioned, with MemberCredits recording which
// IDs belong to which member when the group has several.
func (e *Engine) buildGroupChangeset(group []string, interests map[string]*interest,
	upCache map[string]*builtUpsert, closCache map[string]*rdf.Resource) (*Changeset, error) {
	cs := &Changeset{}
	rep := interests[group[0]]

	// Upserts, sorted by URI.
	uris := make([]string, 0, len(rep.upserts))
	for uri := range rep.upserts {
		uris = append(uris, uri)
	}
	sort.Strings(uris)
	for _, uri := range uris {
		base := upCache[uri]
		if base == nil {
			res, ok, err := e.getResourceLocked(uri)
			if err != nil {
				return nil, err
			}
			if !ok {
				// Raced with deletion inside the batch; remember the miss
				// so other groups skip the fetch too.
				upCache[uri] = &builtUpsert{}
				continue
			}
			closure, err := e.strongClosure(res)
			if err != nil {
				return nil, err
			}
			base = &builtUpsert{res: res, closure: closure}
			upCache[uri] = base
			e.stats.UpsertsBuilt++
		}
		if base.res == nil {
			continue // cached deletion race
		}
		ids := map[int64]bool{}
		for _, subscriber := range group {
			for id := range interests[subscriber].upserts[uri] {
				ids[id] = true
			}
		}
		cs.Upserts = append(cs.Upserts, Upsert{
			Resource: base.res, SubIDs: sortedIDs(ids), Closure: base.closure})
	}

	// Removals: union of the members' (uri, subID) pairs.
	pairs := map[Removal]bool{}
	for _, subscriber := range group {
		for uri, ids := range interests[subscriber].removals {
			for id := range ids {
				pairs[Removal{URIRef: uri, SubID: id}] = true
			}
		}
	}
	for pair := range pairs {
		cs.Removals = append(cs.Removals, pair)
	}
	sort.Slice(cs.Removals, func(a, b int) bool {
		if cs.Removals[a].URIRef != cs.Removals[b].URIRef {
			return cs.Removals[a].URIRef < cs.Removals[b].URIRef
		}
		return cs.Removals[a].SubID < cs.Removals[b].SubID
	})

	// Closure updates, sorted by URI.
	curis := make([]string, 0, len(rep.closures))
	for uri := range rep.closures {
		curis = append(curis, uri)
	}
	sort.Strings(curis)
	for _, uri := range curis {
		cur, cached := closCache[uri]
		if !cached {
			res, ok, err := e.getResourceLocked(uri)
			if err != nil {
				return nil, err
			}
			if ok {
				cur = res
			}
			closCache[uri] = cur
		}
		if cur != nil {
			cs.ClosureUpserts = append(cs.ClosureUpserts, cur)
		}
	}

	// Forced deletes, sorted.
	for uri := range rep.forced {
		cs.ForcedDeletes = append(cs.ForcedDeletes, uri)
	}
	sort.Strings(cs.ForcedDeletes)

	// Credit ownership for shared changesets.
	if len(group) > 1 && !cs.Empty() {
		cs.MemberCredits = make(map[string][]int64, len(group))
		for _, subscriber := range group {
			in := interests[subscriber]
			owned := map[int64]bool{}
			for _, ids := range in.upserts {
				for id := range ids {
					owned[id] = true
				}
			}
			for _, ids := range in.removals {
				for id := range ids {
					owned[id] = true
				}
			}
			cs.MemberCredits[subscriber] = sortedIDs(owned)
		}
	}
	return cs, nil
}

// buildUpsert assembles a standalone upsert with its strong-reference
// closure (initial fills and resubscribe fills; the batch path goes through
// buildGroupChangeset's caches instead).
func (e *Engine) buildUpsert(uri string, subIDs map[int64]bool) (*Upsert, error) {
	res, ok, err := e.getResourceLocked(uri)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil // raced with deletion inside the batch
	}
	closure, err := e.strongClosure(res)
	if err != nil {
		return nil, err
	}
	return &Upsert{Resource: res, SubIDs: sortedIDs(subIDs), Closure: closure}, nil
}

func sortedIDs(ids map[int64]bool) []int64 {
	out := make([]int64, 0, len(ids))
	for id := range ids {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// strongClosure returns the resources reachable from res over strong
// references, transitively, excluding res itself (paper §2.4: "resources
// referenced by [strong references] are always transmitted together with
// the referencing resource").
func (e *Engine) strongClosure(res *rdf.Resource) ([]*rdf.Resource, error) {
	visited := map[string]bool{res.URIRef: true}
	var out []*rdf.Resource
	queue := []*rdf.Resource{res}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range cur.Props {
			if p.Value.Kind != rdf.ResourceRef {
				continue
			}
			if !e.schema.IsStrongReference(cur.Class, p.Name) {
				continue
			}
			target := p.Value.Ref
			if visited[target] {
				continue
			}
			visited[target] = true
			tres, ok, err := e.getResourceLocked(target)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue // dangling reference; nothing to transmit
			}
			out = append(out, tres)
			queue = append(queue, tres)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].URIRef < out[b].URIRef })
	return out, nil
}

// strongHolders finds the subscribers that may cache the given resource via
// strong references: it walks incoming strong references transitively until
// it reaches resources matching subscribed end rules, and collects those
// rules' subscribers.
func (e *Engine) strongHolders(uri string) (map[string]bool, error) {
	subscribers := map[string]bool{}
	visited := map[string]bool{uri: true}
	queue := []string{uri}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		rows, err := e.prep.strongRefsTo.Query(rdb.NewText(cur))
		if err != nil {
			return nil, err
		}
		for _, row := range rows.Data {
			referrer, class, prop := row[0].Str, row[1].Str, row[2].Str
			if !e.schema.IsStrongReference(class, prop) {
				continue
			}
			if visited[referrer] {
				continue
			}
			visited[referrer] = true
			// Does the referrer match any subscribed end rule?
			subs, err := e.subscribedRuleMatches(referrer)
			if err != nil {
				return nil, err
			}
			for s := range subs {
				subscribers[s] = true
			}
			queue = append(queue, referrer)
		}
	}
	return subscribers, nil
}

// subscribedRuleMatches returns the subscribers whose end rules the
// resource currently matches.
func (e *Engine) subscribedRuleMatches(uri string) (map[string]bool, error) {
	rows, err := e.db.Query(`
		SELECT s.subscriber FROM RuleResults rr, SubscriptionEndRules ser, Subscriptions s
		WHERE rr.uri_reference = ? AND ser.end_rule = rr.rule_id AND s.sub_id = ser.sub_id`,
		rdb.NewText(uri))
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, row := range rows.Data {
		out[row[0].Str] = true
	}
	return out, nil
}
