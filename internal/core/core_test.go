package core

import (
	"fmt"
	"testing"

	"mdv/internal/rdf"
)

// paperSchema is the schema implied by the paper's running example.
func paperSchema() *rdf.Schema {
	s := rdf.NewSchema()
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverHost", Type: rdf.TypeString})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverPort", Type: rdf.TypeInteger})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "synthValue", Type: rdf.TypeInteger})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{
		Name: "serverInformation", Type: rdf.TypeResource, RefClass: "ServerInformation", RefKind: rdf.StrongRef})
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{Name: "memory", Type: rdf.TypeInteger})
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{Name: "cpu", Type: rdf.TypeInteger})
	s.MustAddProperty("DataProvider", rdf.PropertyDef{Name: "theme", Type: rdf.TypeString, SetValued: true})
	s.MustAddProperty("DataProvider", rdf.PropertyDef{
		Name: "host", Type: rdf.TypeResource, RefClass: "CycleProvider", RefKind: rdf.WeakRef})
	return s
}

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(paperSchema())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// figure1Doc builds the paper's Figure 1 document.
func figure1Doc() *rdf.Document {
	doc := rdf.NewDocument("doc.rdf")
	host := doc.NewResource("host", "CycleProvider")
	host.Add("serverHost", rdf.Lit("pirates.uni-passau.de"))
	host.Add("serverPort", rdf.Lit("5874"))
	host.Add("serverInformation", rdf.Ref("doc.rdf#info"))
	info := doc.NewResource("info", "ServerInformation")
	info.Add("memory", rdf.Lit("92"))
	info.Add("cpu", rdf.Lit("600"))
	return doc
}

// example331 is the extended rule of paper §3.3.1 (the Example 1 rule plus
// the cpu predicate), which decomposes into RuleA..RuleF of Figure 7.
const example331 = `search CycleProvider c register c
	where c.serverHost contains 'uni-passau.de'
	and c.serverInformation.memory > 64 and c.serverInformation.cpu > 500`

func upsertURIs(cs *Changeset) []string {
	var out []string
	for _, u := range cs.Upserts {
		out = append(out, u.Resource.URIRef)
	}
	return out
}

// TestDecompositionFigure7 reproduces §3.3.1/Figure 7: the example rule
// decomposes into exactly five atomic rules — three triggering rules
// (memory > 64, cpu > 500, serverHost contains) and two join rules — and
// the filter tables of Figure 8 are populated accordingly.
func TestDecompositionFigure7(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr1", example331); err != nil {
		t.Fatal(err)
	}
	if got := e.AtomicRuleCount(); got != 5 {
		t.Errorf("atomic rules = %d, want 5 (RuleA, RuleB, RuleC, RuleE, RuleF)", got)
	}
	// Figure 8: FilterRulesGT holds the two numeric triggering rules.
	gt, err := e.db.Query(`SELECT class, property, value FROM FilterRulesGT ORDER BY property`)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Len() != 2 {
		t.Fatalf("FilterRulesGT has %d rows, want 2", gt.Len())
	}
	if gt.Data[0][0].Str != "ServerInformation" || gt.Data[0][1].Str != "cpu" || gt.Data[0][2].Str != "500" {
		t.Errorf("FilterRulesGT row 0 = %v", gt.Data[0])
	}
	if gt.Data[1][1].Str != "memory" || gt.Data[1][2].Str != "64" {
		t.Errorf("FilterRulesGT row 1 = %v", gt.Data[1])
	}
	// Figure 8: FilterRulesCON holds the contains triggering rule.
	con, err := e.db.Query(`SELECT class, property, value FROM FilterRulesCON`)
	if err != nil {
		t.Fatal(err)
	}
	if con.Len() != 1 || con.Data[0][0].Str != "CycleProvider" ||
		con.Data[0][1].Str != "serverHost" || con.Data[0][2].Str != "uni-passau.de" {
		t.Errorf("FilterRulesCON = %v", con.Data)
	}
	// Dependency graph: two join rules, each with two incoming edges.
	deps, err := e.db.Query(`SELECT COUNT(*) FROM RuleDependencies`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := deps.Scalar(); n.Int != 4 {
		t.Errorf("dependency edges = %d, want 4", n.Int)
	}
}

// TestFilterRunFigure9 reproduces the filter execution of Figure 9: after
// registering the Figure 1 document against the §3.3.1 rule, the filter
// terminates with resource doc.rdf#host as the (only) end-rule result.
func TestFilterRunFigure9(t *testing.T) {
	e := newTestEngine(t)
	subID, initial, err := e.Subscribe("lmr1", example331)
	if err != nil {
		t.Fatal(err)
	}
	if len(initial.Upserts) != 0 {
		t.Errorf("initial changeset should be empty, got %v", upsertURIs(initial))
	}
	ps, err := e.RegisterDocument(figure1Doc())
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil || len(cs.Upserts) != 1 {
		t.Fatalf("changeset = %+v", ps.Changesets)
	}
	up := cs.Upserts[0]
	if up.Resource.URIRef != "doc.rdf#host" {
		t.Errorf("matched %s, want doc.rdf#host", up.Resource.URIRef)
	}
	if len(up.SubIDs) != 1 || up.SubIDs[0] != subID {
		t.Errorf("SubIDs = %v", up.SubIDs)
	}
	// The strong reference transmits the ServerInformation resource too
	// (§2.4).
	if len(up.Closure) != 1 || up.Closure[0].URIRef != "doc.rdf#info" {
		t.Errorf("closure = %+v", up.Closure)
	}
	// Materialized end-rule results contain exactly doc.rdf#host.
	ends, _ := e.EndRulesOf(subID)
	if len(ends) != 1 {
		t.Fatalf("end rules = %v", ends)
	}
	uris, _ := e.RuleResultsOf(ends[0])
	if len(uris) != 1 || uris[0] != "doc.rdf#host" {
		t.Errorf("end rule results = %v", uris)
	}
}

// TestFilterNonMatchingDocument checks that a document failing a predicate
// produces no notification.
func TestFilterNonMatchingDocument(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr1", example331); err != nil {
		t.Fatal(err)
	}
	doc := figure1Doc()
	info, _ := doc.Find("doc.rdf#info")
	info.Set("memory", rdf.Lit("32")) // fails memory > 64
	ps, err := e.RegisterDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Subscribers()) != 0 {
		t.Errorf("unexpected notifications: %v", ps.Subscribers())
	}
}

// TestRuleGroupsFigure6 reproduces §3.3.3: two rules whose join parts have
// equal shape share one rule group (and the shared ANY triggering rule).
func TestRuleGroupsFigure6(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr1",
		`search CycleProvider c register c where c.serverInformation.memory > 64`); err != nil {
		t.Fatal(err)
	}
	// RuleA (any CycleProvider), RuleB1 (memory), RuleC1 (join): 3 rules,
	// 1 group.
	if got := e.AtomicRuleCount(); got != 3 {
		t.Fatalf("atomic rules after first subscribe = %d, want 3", got)
	}
	if got := e.RuleGroupCount(); got != 1 {
		t.Fatalf("groups after first subscribe = %d, want 1", got)
	}
	if _, _, err := e.Subscribe("lmr2",
		`search CycleProvider c register c where c.serverInformation.cpu > 500`); err != nil {
		t.Fatal(err)
	}
	// RuleA shared; RuleB2 and RuleC2 new; C1 and C2 share the group.
	if got := e.AtomicRuleCount(); got != 5 {
		t.Errorf("atomic rules after second subscribe = %d, want 5", got)
	}
	if got := e.RuleGroupCount(); got != 1 {
		t.Errorf("groups after second subscribe = %d, want 1 (C1 and C2 grouped)", got)
	}
	st := e.Stats()
	if st.AtomicRulesShared == 0 {
		t.Error("no sharing recorded for RuleA")
	}

	// Both subscriptions match the Figure 1 document.
	ps, err := e.RegisterDocument(figure1Doc())
	if err != nil {
		t.Fatal(err)
	}
	for _, lmr := range []string{"lmr1", "lmr2"} {
		cs := ps.Changesets[lmr]
		if cs == nil || len(cs.Upserts) != 1 || cs.Upserts[0].Resource.URIRef != "doc.rdf#host" {
			t.Errorf("%s: changeset %+v", lmr, cs)
		}
	}
}

// TestIdenticalRuleSharedCompletely: registering the same rule twice adds
// no atomic rules at all (§3.3.2: equivalent rules evaluate once).
func TestIdenticalRuleSharedCompletely(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr1", example331); err != nil {
		t.Fatal(err)
	}
	n := e.AtomicRuleCount()
	if _, _, err := e.Subscribe("lmr2", example331); err != nil {
		t.Fatal(err)
	}
	if got := e.AtomicRuleCount(); got != n {
		t.Errorf("atomic rules grew from %d to %d on duplicate rule", n, got)
	}
}

// TestOIDRule exercises the benchmark's OID rule type: registering a single
// resource by URI reference (a pure triggering rule, no decomposition).
func TestOIDRule(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr1",
		`search CycleProvider c register c where c = 'doc.rdf#host'`); err != nil {
		t.Fatal(err)
	}
	if got := e.AtomicRuleCount(); got != 1 {
		t.Errorf("OID rule created %d atomic rules, want 1", got)
	}
	ps, err := e.RegisterDocument(figure1Doc())
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil || len(cs.Upserts) != 1 || cs.Upserts[0].Resource.URIRef != "doc.rdf#host" {
		t.Fatalf("OID match failed: %+v", cs)
	}
	st := e.Stats()
	if st.FilterIterations != 0 {
		t.Errorf("OID filter ran %d join iterations, want 0", st.FilterIterations)
	}
}

// TestIncrementalCrossDocumentJoin: the join fires when the second half of
// a join pair arrives in a later batch (materialized results of §3.4).
func TestIncrementalCrossDocumentJoin(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr1",
		`search CycleProvider c register c where c.serverInformation.memory > 64`); err != nil {
		t.Fatal(err)
	}
	// First document: only the ServerInformation half.
	d1 := rdf.NewDocument("info.rdf")
	info := d1.NewResource("i", "ServerInformation")
	info.Add("memory", rdf.Lit("128"))
	ps, err := e.RegisterDocument(d1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Subscribers()) != 0 {
		t.Fatalf("half a join matched: %v", ps.Subscribers())
	}
	// Second document: the CycleProvider referencing it across documents.
	d2 := rdf.NewDocument("cp.rdf")
	cp := d2.NewResource("c", "CycleProvider")
	cp.Add("serverHost", rdf.Lit("x.example.org"))
	cp.Add("serverInformation", rdf.Ref("info.rdf#i"))
	ps, err = e.RegisterDocument(d2)
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil || len(cs.Upserts) != 1 || cs.Upserts[0].Resource.URIRef != "cp.rdf#c" {
		t.Fatalf("cross-document join failed: %+v", cs)
	}
	// And the reverse arrival order.
	if _, _, err := e.Subscribe("lmr2",
		`search CycleProvider c register c where c.serverInformation.cpu > 100`); err != nil {
		t.Fatal(err)
	}
	d3 := rdf.NewDocument("cp2.rdf")
	cp2 := d3.NewResource("c", "CycleProvider")
	cp2.Add("serverInformation", rdf.Ref("info2.rdf#i"))
	if _, err := e.RegisterDocument(d3); err != nil {
		t.Fatal(err)
	}
	d4 := rdf.NewDocument("info2.rdf")
	info2 := d4.NewResource("i", "ServerInformation")
	info2.Add("cpu", rdf.Lit("200"))
	ps, err = e.RegisterDocument(d4)
	if err != nil {
		t.Fatal(err)
	}
	cs = ps.Changesets["lmr2"]
	if cs == nil || len(cs.Upserts) != 1 || cs.Upserts[0].Resource.URIRef != "cp2.rdf#c" {
		t.Fatalf("reverse-order join failed: %+v", cs)
	}
}

// TestSubscribeAfterRegistration: subscribing later returns the initial
// cache content (the LMR's initial replication, §2.2).
func TestSubscribeAfterRegistration(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.RegisterDocument(figure1Doc()); err != nil {
		t.Fatal(err)
	}
	_, initial, err := e.Subscribe("lmr1", example331)
	if err != nil {
		t.Fatal(err)
	}
	if len(initial.Upserts) != 1 || initial.Upserts[0].Resource.URIRef != "doc.rdf#host" {
		t.Fatalf("initial fill = %v", upsertURIs(initial))
	}
	if len(initial.Upserts[0].Closure) != 1 {
		t.Errorf("initial fill misses closure: %+v", initial.Upserts[0])
	}
}

// TestUpdateStartsMatching covers §3.5: "The resource is matched by a rule
// it previously was not."
func TestUpdateStartsMatching(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr1",
		`search CycleProvider c register c where c.serverInformation.memory > 64`); err != nil {
		t.Fatal(err)
	}
	doc := figure1Doc()
	info, _ := doc.Find("doc.rdf#info")
	info.Set("memory", rdf.Lit("32"))
	if _, err := e.RegisterDocument(doc); err != nil {
		t.Fatal(err)
	}
	// Update: memory 32 -> 128 (the paper's example update).
	doc2 := figure1Doc()
	info2, _ := doc2.Find("doc.rdf#info")
	info2.Set("memory", rdf.Lit("128"))
	ps, err := e.RegisterDocument(doc2)
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil || len(cs.Upserts) != 1 || cs.Upserts[0].Resource.URIRef != "doc.rdf#host" {
		t.Fatalf("update did not trigger match: %+v", cs)
	}
	if len(cs.Removals) != 0 {
		t.Errorf("unexpected removals: %v", cs.Removals)
	}
}

// TestUpdateStopsMatching covers §3.5: "The resource is no longer matched
// by a rule it previously was" — a true candidate.
func TestUpdateStopsMatching(t *testing.T) {
	e := newTestEngine(t)
	subID, _, err := e.Subscribe("lmr1",
		`search CycleProvider c register c where c.serverInformation.memory > 64`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterDocument(figure1Doc()); err != nil {
		t.Fatal(err)
	}
	// memory 92 -> 32: host stops matching.
	doc2 := figure1Doc()
	info2, _ := doc2.Find("doc.rdf#info")
	info2.Set("memory", rdf.Lit("32"))
	ps, err := e.RegisterDocument(doc2)
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil || len(cs.Removals) != 1 {
		t.Fatalf("no removal published: %+v", cs)
	}
	if cs.Removals[0].URIRef != "doc.rdf#host" || cs.Removals[0].SubID != subID {
		t.Errorf("removal = %+v", cs.Removals[0])
	}
}

// TestUpdateWrongCandidate covers §3.5's "wrong candidates": a resource
// that stops matching one rule but still matches another stays cached for
// the still-matching subscription, and the lapsed subscription gets its
// removal.
func TestUpdateWrongCandidate(t *testing.T) {
	e := newTestEngine(t)
	memID, _, err := e.Subscribe("lmr1",
		`search CycleProvider c register c where c.serverInformation.memory > 64`)
	if err != nil {
		t.Fatal(err)
	}
	cpuID, _, err := e.Subscribe("lmr1",
		`search CycleProvider c register c where c.serverInformation.cpu > 500`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterDocument(figure1Doc()); err != nil {
		t.Fatal(err)
	}
	// memory 92 -> 32 (stops matching memID); cpu unchanged (keeps cpuID).
	doc2 := figure1Doc()
	info2, _ := doc2.Find("doc.rdf#info")
	info2.Set("memory", rdf.Lit("32"))
	ps, err := e.RegisterDocument(doc2)
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil {
		t.Fatal("no changeset")
	}
	var sawMemRemoval, sawCpuRemoval bool
	for _, r := range cs.Removals {
		if r.SubID == memID {
			sawMemRemoval = true
		}
		if r.SubID == cpuID {
			sawCpuRemoval = true
		}
	}
	if !sawMemRemoval {
		t.Error("lapsed memory subscription got no removal")
	}
	if sawCpuRemoval {
		t.Error("still-matching cpu subscription wrongly got a removal")
	}
	// The cpu subscription keeps the resource: it should receive the
	// updated content as an upsert (§3.5 case three).
	found := false
	for _, up := range cs.Upserts {
		if up.Resource.URIRef == "doc.rdf#host" {
			for _, id := range up.SubIDs {
				if id == cpuID {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("cpu subscription did not receive the refreshed resource")
	}
}

// TestUpdateStillMatchingRefresh covers §3.5: "The resource still matches
// all rules it previously had. All LMRs that cache this resource must
// update their cache."
func TestUpdateStillMatchingRefresh(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr1",
		`search CycleProvider c register c where c.serverInformation.memory > 64`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterDocument(figure1Doc()); err != nil {
		t.Fatal(err)
	}
	// memory 92 -> 100: still matches, content changed.
	doc2 := figure1Doc()
	info2, _ := doc2.Find("doc.rdf#info")
	info2.Set("memory", rdf.Lit("100"))
	ps, err := e.RegisterDocument(doc2)
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil || len(cs.Upserts) != 1 {
		t.Fatalf("refresh not published: %+v", cs)
	}
	if len(cs.Removals) != 0 {
		t.Errorf("spurious removals: %v", cs.Removals)
	}
	// The refreshed closure carries the new memory value.
	if v, _ := cs.Upserts[0].Closure[0].Get("memory"); v.String() != "100" {
		t.Errorf("closure memory = %s, want 100", v.String())
	}
}

// TestClosureUpdateForWeakMatch: updating a resource that matches no rule
// itself but is strongly referenced by a matched resource publishes a
// closure update (the referencing resource is unchanged).
func TestClosureUpdate(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr1",
		`search CycleProvider c register c where c.serverHost contains 'uni-passau.de'`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterDocument(figure1Doc()); err != nil {
		t.Fatal(err)
	}
	// Update only the ServerInformation (cpu 600 -> 700). The host resource
	// is unchanged and matches only through its own properties.
	doc2 := figure1Doc()
	info2, _ := doc2.Find("doc.rdf#info")
	info2.Set("cpu", rdf.Lit("700"))
	ps, err := e.RegisterDocument(doc2)
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil || len(cs.ClosureUpserts) != 1 || cs.ClosureUpserts[0].URIRef != "doc.rdf#info" {
		t.Fatalf("closure update not published: %+v", cs)
	}
	if v, _ := cs.ClosureUpserts[0].Get("cpu"); v.String() != "700" {
		t.Errorf("closure update carries cpu %s, want 700", v.String())
	}
}

// TestDeleteDocument: removing a whole document publishes removals and
// forced deletes.
func TestDeleteDocument(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr1", example331); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterDocument(figure1Doc()); err != nil {
		t.Fatal(err)
	}
	ps, err := e.DeleteDocument("doc.rdf")
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil {
		t.Fatal("no changeset on delete")
	}
	if len(cs.Removals) == 0 {
		t.Error("no removals on delete")
	}
	wantDeleted := map[string]bool{"doc.rdf#host": true, "doc.rdf#info": true}
	for _, d := range cs.ForcedDeletes {
		delete(wantDeleted, d)
	}
	if len(wantDeleted) != 0 {
		t.Errorf("forced deletes missing: %v (got %v)", wantDeleted, cs.ForcedDeletes)
	}
	if e.ResourceCount() != 0 || e.StatementCount() != 0 {
		t.Errorf("data remains after delete: %d resources, %d statements",
			e.ResourceCount(), e.StatementCount())
	}
	if _, err := e.DeleteDocument("doc.rdf"); err == nil {
		t.Error("double delete accepted")
	}
	// Re-registration after delete works.
	if _, err := e.RegisterDocument(figure1Doc()); err != nil {
		t.Errorf("re-registration after delete: %v", err)
	}
}

// TestUnsubscribeSweepsRules: unsubscribing releases atomic rules; shared
// rules survive while exclusively owned rules are swept.
func TestUnsubscribeSweepsRules(t *testing.T) {
	e := newTestEngine(t)
	id1, _, err := e.Subscribe("lmr1",
		`search CycleProvider c register c where c.serverInformation.memory > 64`)
	if err != nil {
		t.Fatal(err)
	}
	id2, _, err := e.Subscribe("lmr2",
		`search CycleProvider c register c where c.serverInformation.cpu > 500`)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.AtomicRuleCount(); got != 5 {
		t.Fatalf("atomic rules = %d, want 5", got)
	}
	// Unsubscribing lmr2 sweeps RuleB2 and RuleC2 but keeps shared RuleA.
	if err := e.Unsubscribe(id2); err != nil {
		t.Fatal(err)
	}
	if got := e.AtomicRuleCount(); got != 3 {
		t.Errorf("atomic rules after first unsubscribe = %d, want 3", got)
	}
	if err := e.Unsubscribe(id1); err != nil {
		t.Fatal(err)
	}
	if got := e.AtomicRuleCount(); got != 0 {
		t.Errorf("atomic rules after full unsubscribe = %d, want 0", got)
	}
	if got := e.RuleGroupCount(); got != 0 {
		t.Errorf("groups after full unsubscribe = %d, want 0", got)
	}
	// Filter tables swept too.
	for _, table := range []string{"FilterRulesANY", "FilterRulesGT", "RuleResults", "RuleDependencies", "JoinRules"} {
		if n := e.count(table); n != 0 {
			t.Errorf("%s has %d rows after unsubscribe", table, n)
		}
	}
	if err := e.Unsubscribe(id1); err == nil {
		t.Error("double unsubscribe accepted")
	}
	// The engine still works afterwards.
	if _, _, err := e.Subscribe("lmr1", example331); err != nil {
		t.Errorf("subscribe after sweep: %v", err)
	}
}

// TestORRuleSplitsIntoTwoEndRules: OR is handled by rule splitting and
// either disjunct matching delivers the resource once.
func TestORRule(t *testing.T) {
	e := newTestEngine(t)
	subID, _, err := e.Subscribe("lmr1",
		`search CycleProvider c register c where c.serverPort = 5874 or c.serverPort = 80`)
	if err != nil {
		t.Fatal(err)
	}
	ends, _ := e.EndRulesOf(subID)
	if len(ends) != 2 {
		t.Fatalf("end rules = %v, want 2 (OR split)", ends)
	}
	ps, err := e.RegisterDocument(figure1Doc())
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil || len(cs.Upserts) != 1 {
		t.Fatalf("OR rule match: %+v", cs)
	}
}

// TestNamedRuleExtension: a rule defined over another rule's extension.
func TestNamedRuleExtension(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterNamedRule("PassauProviders",
		`search CycleProvider c register c where c.serverHost contains 'uni-passau.de'`); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterNamedRule("PassauProviders", `search CycleProvider c register c`); err == nil {
		t.Error("duplicate named rule accepted")
	}
	if err := e.RegisterNamedRule("CycleProvider", `search CycleProvider c register c`); err == nil {
		t.Error("class-name collision accepted")
	}
	if _, _, err := e.Subscribe("lmr1",
		`search PassauProviders p register p where p.serverPort = 5874`); err != nil {
		t.Fatal(err)
	}
	ps, err := e.RegisterDocument(figure1Doc())
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil || len(cs.Upserts) != 1 || cs.Upserts[0].Resource.URIRef != "doc.rdf#host" {
		t.Fatalf("named-rule subscription: %+v", cs)
	}
	if got := e.NamedRules(); len(got) != 1 || got[0] != "PassauProviders" {
		t.Errorf("NamedRules = %v", got)
	}
}

// TestBatchRegistration: several documents in one batch, each matching.
func TestBatchRegistration(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr1",
		`search CycleProvider c register c where c.serverInformation.memory > 64`); err != nil {
		t.Fatal(err)
	}
	var docs []*rdf.Document
	for i := 0; i < 10; i++ {
		doc := rdf.NewDocument(fmt.Sprintf("d%d.rdf", i))
		cp := doc.NewResource("c", "CycleProvider")
		cp.Add("serverInformation", rdf.Ref(fmt.Sprintf("d%d.rdf#s", i)))
		si := doc.NewResource("s", "ServerInformation")
		mem := "128"
		if i%2 == 1 {
			mem = "32"
		}
		si.Add("memory", rdf.Lit(mem))
		docs = append(docs, doc)
	}
	ps, err := e.RegisterDocuments(docs)
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil || len(cs.Upserts) != 5 {
		t.Fatalf("batch matched %d resources, want 5", len(cs.Upserts))
	}
	st := e.Stats()
	if st.FilterRuns != 1 {
		t.Errorf("batch ran the filter %d times, want 1", st.FilterRuns)
	}
}

// TestDuplicateResourceRejected: a URI reference cannot be registered by
// two different documents.
func TestDuplicateResourceRejected(t *testing.T) {
	e := newTestEngine(t)
	d1 := rdf.NewDocument("a.rdf")
	d1.NewResource("x", "ServerInformation").Add("memory", rdf.Lit("1"))
	if _, err := e.RegisterDocument(d1); err != nil {
		t.Fatal(err)
	}
	d2 := rdf.NewDocument("b.rdf")
	d2.Resources = append(d2.Resources, &rdf.Resource{URIRef: "a.rdf#x", Class: "ServerInformation"})
	if _, err := e.RegisterDocument(d2); err == nil {
		t.Error("cross-document URI collision accepted")
	}
	// Duplicate documents within a batch rejected.
	if _, err := e.RegisterDocuments([]*rdf.Document{d1, d1}); err == nil {
		t.Error("duplicate document in batch accepted")
	}
	// Schema violations rejected.
	bad := rdf.NewDocument("c.rdf")
	bad.NewResource("y", "NoSuchClass")
	if _, err := e.RegisterDocument(bad); err == nil {
		t.Error("schema violation accepted")
	}
}

// TestAblationsAgree: disabling rule groups or sharing must not change the
// set of matches, only the amount of work.
func TestAblationsAgree(t *testing.T) {
	run := func(opts Options) []string {
		t.Helper()
		e, err := NewEngineWithOptions(paperSchema(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, rule := range []string{
			example331,
			`search CycleProvider c register c where c.serverInformation.cpu > 500`,
			`search CycleProvider c register c where c = 'doc.rdf#host'`,
		} {
			if _, _, err := e.Subscribe(fmt.Sprintf("lmr%d", i), rule); err != nil {
				t.Fatal(err)
			}
		}
		ps, err := e.RegisterDocument(figure1Doc())
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, s := range ps.Subscribers() {
			for _, u := range ps.Changesets[s].Upserts {
				out = append(out, s+":"+u.Resource.URIRef)
			}
		}
		return out
	}
	base := run(Options{})
	noGroups := run(Options{DisableRuleGroups: true})
	noSharing := run(Options{DisableSharing: true})
	noTyped := run(Options{DisableTypedIndexes: true})
	if fmt.Sprint(base) != fmt.Sprint(noGroups) {
		t.Errorf("rule-group ablation changed results:\n%v\n%v", base, noGroups)
	}
	if fmt.Sprint(base) != fmt.Sprint(noSharing) {
		t.Errorf("sharing ablation changed results:\n%v\n%v", base, noSharing)
	}
	if fmt.Sprint(base) != fmt.Sprint(noTyped) {
		t.Errorf("typed-index ablation changed results:\n%v\n%v", base, noTyped)
	}
}

// TestBrowse: the MDP-side browsing facility of §2.2.
func TestBrowse(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.RegisterDocument(figure1Doc()); err != nil {
		t.Fatal(err)
	}
	rs, err := e.Browse("CycleProvider", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].URIRef != "doc.rdf#host" {
		t.Errorf("Browse all = %v", rs)
	}
	rs, err = e.Browse("CycleProvider", "pirates")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Errorf("Browse filtered = %v", rs)
	}
	rs, err = e.Browse("CycleProvider", "nomatch")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("Browse nomatch = %v", rs)
	}
}

// TestStoredDocumentRoundTrip: documents are stored and reparseable.
func TestStoredDocumentRoundTrip(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.RegisterDocument(figure1Doc()); err != nil {
		t.Fatal(err)
	}
	doc, err := e.StoredDocument("doc.rdf")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Resources) != 2 {
		t.Errorf("stored document has %d resources", len(doc.Resources))
	}
	uris, err := e.DocumentURIs()
	if err != nil {
		t.Fatal(err)
	}
	if len(uris) != 1 || uris[0] != "doc.rdf" {
		t.Errorf("DocumentURIs = %v", uris)
	}
}

// TestSetValuedAnyOperator: the ? operator matches when any element of a
// set-valued property satisfies the predicate.
func TestSetValuedAnyOperator(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr1",
		`search DataProvider d register d where d.theme? = 'sports'`); err != nil {
		t.Fatal(err)
	}
	doc := rdf.NewDocument("dp.rdf")
	dp := doc.NewResource("d", "DataProvider")
	dp.Add("theme", rdf.Lit("news"))
	dp.Add("theme", rdf.Lit("sports"))
	dp.Add("theme", rdf.Lit("weather"))
	ps, err := e.RegisterDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil || len(cs.Upserts) != 1 {
		t.Fatalf("any-operator match failed: %+v", cs)
	}
	// A provider without the element does not match.
	doc2 := rdf.NewDocument("dp2.rdf")
	dp2 := doc2.NewResource("d", "DataProvider")
	dp2.Add("theme", rdf.Lit("news"))
	ps, err = e.RegisterDocument(doc2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Subscribers()) != 0 {
		t.Error("non-matching set-valued resource delivered")
	}
}

// TestWeakReferenceNotTransmitted: weak references are never followed
// (§2.4).
func TestWeakReferenceNotTransmitted(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr1",
		`search DataProvider d register d where d.theme? = 'sports'`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterDocument(figure1Doc()); err != nil {
		t.Fatal(err)
	}
	doc := rdf.NewDocument("dp.rdf")
	dp := doc.NewResource("d", "DataProvider")
	dp.Add("theme", rdf.Lit("sports"))
	dp.Add("host", rdf.Ref("doc.rdf#host")) // weak reference
	ps, err := e.RegisterDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil || len(cs.Upserts) != 1 {
		t.Fatalf("match failed: %+v", cs)
	}
	if len(cs.Upserts[0].Closure) != 0 {
		t.Errorf("weak reference transmitted: %+v", cs.Upserts[0].Closure)
	}
}

// TestTransitiveStrongClosure: strong closures follow chains.
func TestTransitiveStrongClosure(t *testing.T) {
	s := paperSchema()
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{
		Name: "rack", Type: rdf.TypeResource, RefClass: "Rack", RefKind: rdf.StrongRef})
	s.MustAddProperty("Rack", rdf.PropertyDef{Name: "location", Type: rdf.TypeString})
	e, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Subscribe("lmr1",
		`search CycleProvider c register c where c.serverPort = 5874`); err != nil {
		t.Fatal(err)
	}
	doc := figure1Doc()
	info, _ := doc.Find("doc.rdf#info")
	info.Add("rack", rdf.Ref("doc.rdf#rack"))
	rack := doc.NewResource("rack", "Rack")
	rack.Add("location", rdf.Lit("passau-dc-1"))
	ps, err := e.RegisterDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil || len(cs.Upserts) != 1 {
		t.Fatal("no match")
	}
	if len(cs.Upserts[0].Closure) != 2 {
		t.Errorf("transitive closure = %v, want info and rack", len(cs.Upserts[0].Closure))
	}
}
