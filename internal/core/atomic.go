package core

import (
	"fmt"
	"strconv"
	"strings"

	"mdv/internal/rdb"
	"mdv/internal/rdf"
	"mdv/internal/rules"
)

// numValue parses a lexical into the typed numeric column value, mirroring
// CAST(x AS FLOAT) exactly (same trimming, same accepted forms, so Inf and
// NaN lexicals of float-typed properties round-trip). Text that does not
// parse yields NULL, which no comparison matches — where CAST would abort
// the whole query instead. The two are indistinguishable through the public
// API: schema validation guarantees numeric-typed properties hold parseable
// lexicals, and the rule normalizer rejects ordering operators on
// non-numeric operands.
func numValue(s string) rdb.Value {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return rdb.Null()
	}
	return rdb.NewFloat(f)
}

// Atomic rule kinds stored in AtomicRules.kind.
const (
	kindTrigger = "T"
	kindJoin    = "J"
)

// triggerSpec describes one triggering rule (paper §3.3.1): a single class
// and either no predicate (any) or one comparison with a constant.
type triggerSpec struct {
	class    string
	any      bool
	property string // rdf.SubjectProperty for bare-variable predicates
	op       rules.Op
	value    rules.Const
	numeric  bool // comparison reconverts via CAST (paper §3.3.4)
}

// text returns the canonical rule text used for deduplication (§3.3.4:
// "There are no duplicates, i.e., no rules having the same rule text but
// different rule_ids").
func (t triggerSpec) text() string {
	if t.any {
		return "search " + t.class + " v register v"
	}
	lhs := "v." + t.property
	if t.property == rdf.SubjectProperty {
		lhs = "v"
	}
	return "search " + t.class + " v register v where " + lhs + " " + t.op.String() + " " + t.value.Text()
}

// joinSpec describes one join rule (§3.3.1): two input atomic rules and a
// single join predicate. Empty props mean the bare resource (its URI
// reference). self marks predicates over a single resource (both sides the
// same variable).
type joinSpec struct {
	leftRule, rightRule   int64
	leftClass, rightClass string
	leftProp, rightProp   string
	op                    rules.Op
	registerSide          byte // 'L' or 'R'
	self                  bool
	numeric               bool
}

// orient canonicalizes the spec so structurally equal join rules produce
// equal texts: for flippable operators the smaller (rule, prop) pair goes
// left. contains is not symmetric and keeps its orientation.
func (j joinSpec) orient() joinSpec {
	if j.op == rules.OpContains {
		return j
	}
	leftKey := fmt.Sprintf("%d\x00%s", j.leftRule, j.leftProp)
	rightKey := fmt.Sprintf("%d\x00%s", j.rightRule, j.rightProp)
	if leftKey <= rightKey {
		return j
	}
	flipped, _ := flipOp(j.op)
	out := j
	out.leftRule, out.rightRule = j.rightRule, j.leftRule
	out.leftClass, out.rightClass = j.rightClass, j.leftClass
	out.leftProp, out.rightProp = j.rightProp, j.leftProp
	out.op = flipped
	if j.registerSide == 'L' {
		out.registerSide = 'R'
	} else {
		out.registerSide = 'L'
	}
	return out
}

func flipOp(op rules.Op) (rules.Op, bool) {
	switch op {
	case rules.OpLt:
		return rules.OpGt, true
	case rules.OpLe:
		return rules.OpGe, true
	case rules.OpGt:
		return rules.OpLt, true
	case rules.OpGe:
		return rules.OpLe, true
	case rules.OpEq, rules.OpNe:
		return op, true
	default:
		return op, false
	}
}

func (j joinSpec) text() string {
	lhs := "a"
	if j.leftProp != "" {
		lhs = "a." + j.leftProp
	}
	rhs := "b"
	if j.rightProp != "" {
		rhs = "b." + j.rightProp
	}
	if j.self {
		return fmt.Sprintf("search R%d a register a where %s %s %s",
			j.leftRule, lhs, j.op.String(), strings.Replace(rhs, "b", "a", 1))
	}
	reg := "a"
	if j.registerSide == 'R' {
		reg = "b"
	}
	return fmt.Sprintf("search R%d a, R%d b register %s where %s %s %s",
		j.leftRule, j.rightRule, reg, lhs, j.op.String(), rhs)
}

// groupKey identifies the rule group of a join rule (§3.3.3): join rules
// with an equal where part, equally bound classes, and the same register
// side evaluate together.
func (j joinSpec) groupKey() string {
	return strings.Join([]string{
		j.leftClass, j.leftProp, j.op.String(), j.rightProp, j.rightClass,
		string(j.registerSide), fmt.Sprintf("self=%v", j.self), fmt.Sprintf("num=%v", j.numeric),
	}, "|")
}

// registeredClass is the type of the rule (§3.3.1: "a rule's type is the
// type of the resources it registers").
func (j joinSpec) registeredClass() string {
	if j.registerSide == 'R' {
		return j.rightClass
	}
	return j.leftClass
}

// internCtx records the atomic rules touched while decomposing one
// subscription: every intern call (for refcount bookkeeping on
// unsubscribe) and the freshly created ids (already initialized bottom-up).
type internCtx struct {
	interned []int64
	created  []int64
}

// lookupAtomicByText finds an existing atomic rule with the given canonical
// text.
func (e *Engine) lookupAtomicByText(text string) (int64, bool, error) {
	rows, err := e.db.Query(`SELECT rule_id FROM AtomicRules WHERE rule_text = ?`, rdb.NewText(text))
	if err != nil {
		return 0, false, err
	}
	if rows.Empty() {
		return 0, false, nil
	}
	return rows.Data[0][0].Int, true, nil
}

// internTrigger returns the rule id of the triggering rule, creating and
// initializing it if it is new. The context records the touched rule ids.
func (e *Engine) internTrigger(spec triggerSpec, ctx *internCtx) (int64, error) {
	text := spec.text()
	if e.opts.DisableSharing {
		e.disambig++
		text = fmt.Sprintf("%s #%d", text, e.disambig)
	}
	if id, ok, err := e.lookupAtomicByText(text); err != nil {
		return 0, err
	} else if ok {
		e.stats.AtomicRulesShared++
		if _, err := e.db.Exec(`UPDATE AtomicRules SET refcount = refcount + 1 WHERE rule_id = ?`,
			rdb.NewInt(id)); err != nil {
			return 0, err
		}
		ctx.interned = append(ctx.interned, id)
		return id, nil
	}
	e.nextRuleID++
	id := e.nextRuleID
	e.stats.AtomicRulesCreated++
	if _, err := e.db.Exec(
		`INSERT INTO AtomicRules (rule_id, kind, class, rule_text, refcount) VALUES (?, ?, ?, ?, 1)`,
		rdb.NewInt(id), rdb.NewText(kindTrigger), rdb.NewText(spec.class), rdb.NewText(text)); err != nil {
		return 0, err
	}
	table, err := filterTableFor(spec)
	if err != nil {
		return 0, err
	}
	switch {
	case spec.any:
		if _, err := e.db.Exec(`INSERT INTO FilterRulesANY (rule_id, class) VALUES (?, ?)`,
			rdb.NewInt(id), rdb.NewText(spec.class)); err != nil {
			return 0, err
		}
	case numericFilterTable(table):
		if _, err := e.db.Exec(
			`INSERT INTO `+table+` (rule_id, class, property, value, num_value) VALUES (?, ?, ?, ?, ?)`,
			rdb.NewInt(id), rdb.NewText(spec.class), rdb.NewText(spec.property),
			rdb.NewText(spec.value.Lexical()), numValue(spec.value.Lexical())); err != nil {
			return 0, err
		}
	default:
		if _, err := e.db.Exec(
			`INSERT INTO `+table+` (rule_id, class, property, value) VALUES (?, ?, ?, ?)`,
			rdb.NewInt(id), rdb.NewText(spec.class), rdb.NewText(spec.property),
			rdb.NewText(spec.value.Lexical())); err != nil {
			return 0, err
		}
	}
	// Mirror the rule into its owning shard's filter table; the canonical
	// tables above stay authoritative for persistence and the serial path.
	if e.shards != nil {
		if err := e.shards.insertTriggerRule(spec, table, id); err != nil {
			return 0, err
		}
	}
	// Contains rules additionally enter the substring index (derived state,
	// same authority rule as the shard mirror).
	if e.text != nil && table == "FilterRulesCON" {
		e.text.insert(spec.class, spec.property, spec.value.Lexical(), id)
	}
	ctx.interned = append(ctx.interned, id)
	ctx.created = append(ctx.created, id)
	if err := e.initializeTrigger(id, spec); err != nil {
		return 0, err
	}
	return id, nil
}

// numericFilterTable reports whether a FilterRules table carries the typed
// num_value column (every table whose comparison reconverts numerically).
func numericFilterTable(table string) bool {
	switch table {
	case "FilterRulesEQN", "FilterRulesNEN", "FilterRulesLT",
		"FilterRulesLE", "FilterRulesGT", "FilterRulesGE":
		return true
	}
	return false
}

// filterTableFor maps a triggering rule to its FilterRules table (§3.3.4).
func filterTableFor(spec triggerSpec) (string, error) {
	if spec.any {
		return "FilterRulesANY", nil
	}
	switch spec.op {
	case rules.OpEq:
		if spec.numeric {
			return "FilterRulesEQN", nil
		}
		return "FilterRulesEQ", nil
	case rules.OpNe:
		if spec.numeric {
			return "FilterRulesNEN", nil
		}
		return "FilterRulesNE", nil
	case rules.OpContains:
		return "FilterRulesCON", nil
	case rules.OpLt:
		return "FilterRulesLT", nil
	case rules.OpLe:
		return "FilterRulesLE", nil
	case rules.OpGt:
		return "FilterRulesGT", nil
	case rules.OpGe:
		return "FilterRulesGE", nil
	}
	return "", fmt.Errorf("core: no filter table for operator %v", spec.op)
}

// internJoin returns the rule id of the join rule, creating it (with its
// group and dependency edges) and initializing its materialization if new.
func (e *Engine) internJoin(spec joinSpec, ctx *internCtx) (int64, error) {
	spec = spec.orient()
	text := spec.text()
	if e.opts.DisableSharing {
		e.disambig++
		text = fmt.Sprintf("%s #%d", text, e.disambig)
	}
	if id, ok, err := e.lookupAtomicByText(text); err != nil {
		return 0, err
	} else if ok {
		e.stats.AtomicRulesShared++
		if _, err := e.db.Exec(`UPDATE AtomicRules SET refcount = refcount + 1 WHERE rule_id = ?`,
			rdb.NewInt(id)); err != nil {
			return 0, err
		}
		ctx.interned = append(ctx.interned, id)
		return id, nil
	}
	e.nextRuleID++
	id := e.nextRuleID
	e.stats.AtomicRulesCreated++
	groupID, err := e.internGroup(spec, id)
	if err != nil {
		return 0, err
	}
	if _, err := e.db.Exec(
		`INSERT INTO AtomicRules (rule_id, kind, class, rule_text, refcount) VALUES (?, ?, ?, ?, 1)`,
		rdb.NewInt(id), rdb.NewText(kindJoin), rdb.NewText(spec.registeredClass()), rdb.NewText(text)); err != nil {
		return 0, err
	}
	if _, err := e.db.Exec(
		`INSERT INTO JoinRules (rule_id, left_rule, right_rule, group_id) VALUES (?, ?, ?, ?)`,
		rdb.NewInt(id), rdb.NewInt(spec.leftRule), rdb.NewInt(spec.rightRule), rdb.NewInt(groupID)); err != nil {
		return 0, err
	}
	// Dependency edges: the inputs feed this rule (paper Figure 5/7).
	if _, err := e.db.Exec(
		`INSERT INTO RuleDependencies (source_rule, target_rule, side) VALUES (?, ?, 'L')`,
		rdb.NewInt(spec.leftRule), rdb.NewInt(id)); err != nil {
		return 0, err
	}
	if !spec.self {
		if _, err := e.db.Exec(
			`INSERT INTO RuleDependencies (source_rule, target_rule, side) VALUES (?, ?, 'R')`,
			rdb.NewInt(spec.rightRule), rdb.NewInt(id)); err != nil {
			return 0, err
		}
	}
	// Group feed edges (deduplicated; self groups have a single input side).
	if err := e.addGroupFeed(spec.leftRule, 'L', groupID); err != nil {
		return 0, err
	}
	if !spec.self {
		if err := e.addGroupFeed(spec.rightRule, 'R', groupID); err != nil {
			return 0, err
		}
	}
	ctx.interned = append(ctx.interned, id)
	ctx.created = append(ctx.created, id)
	if err := e.initializeJoin(id, spec); err != nil {
		return 0, err
	}
	return id, nil
}

// addGroupFeed records that an atomic rule feeds one side of a join-rule
// group, deduplicating on (source, side, group).
func (e *Engine) addGroupFeed(source int64, side byte, groupID int64) error {
	rows, err := e.db.Query(
		`SELECT group_id FROM GroupFeeds WHERE source_rule = ? AND side = ? AND group_id = ? LIMIT 1`,
		rdb.NewInt(source), rdb.NewText(string(side)), rdb.NewInt(groupID))
	if err != nil {
		return err
	}
	if !rows.Empty() {
		return nil
	}
	_, err = e.db.Exec(`INSERT INTO GroupFeeds (source_rule, side, group_id) VALUES (?, ?, ?)`,
		rdb.NewInt(source), rdb.NewText(string(side)), rdb.NewInt(groupID))
	return err
}

// rebuildGroupFeeds re-derives a group's feed edges from its remaining
// members (after a join rule was swept).
func (e *Engine) rebuildGroupFeeds(gid int64) error {
	if _, err := e.db.Exec(`DELETE FROM GroupFeeds WHERE group_id = ?`, rdb.NewInt(gid)); err != nil {
		return err
	}
	rows, err := e.db.Query(`SELECT left_rule, right_rule FROM JoinRules WHERE group_id = ?`, rdb.NewInt(gid))
	if err != nil {
		return err
	}
	if rows.Empty() {
		return nil
	}
	g, err := e.groupByID(gid)
	if err != nil {
		return err
	}
	for _, r := range rows.Data {
		if err := e.addGroupFeed(r[0].Int, 'L', gid); err != nil {
			return err
		}
		if !g.self {
			if err := e.addGroupFeed(r[1].Int, 'R', gid); err != nil {
				return err
			}
		}
	}
	return nil
}

// internGroup finds or creates the rule group for a join rule (§3.3.3).
// With rule groups disabled every join rule gets a private group.
func (e *Engine) internGroup(spec joinSpec, ruleID int64) (int64, error) {
	key := spec.groupKey()
	if e.opts.DisableRuleGroups {
		key = fmt.Sprintf("%s|private=%d", key, ruleID)
	}
	rows, err := e.db.Query(`SELECT group_id FROM RuleGroups WHERE group_key = ?`, rdb.NewText(key))
	if err != nil {
		return 0, err
	}
	if !rows.Empty() {
		return rows.Data[0][0].Int, nil
	}
	e.nextGroupID++
	gid := e.nextGroupID
	_, err = e.db.Exec(`INSERT INTO RuleGroups
		(group_id, left_class, left_prop, op, right_prop, right_class, register_side, is_self, group_key)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)`,
		rdb.NewInt(gid), rdb.NewText(spec.leftClass), rdb.NewText(spec.leftProp),
		rdb.NewText(spec.op.String()), rdb.NewText(spec.rightProp), rdb.NewText(spec.rightClass),
		rdb.NewText(string(spec.registerSide)), rdb.NewBool(spec.self), rdb.NewText(key))
	if err != nil {
		return 0, err
	}
	return gid, nil
}

// groupInfo is the decoded form of a RuleGroups row.
type groupInfo struct {
	id           int64
	leftClass    string
	leftProp     string
	op           rules.Op
	rightProp    string
	rightClass   string
	registerSide byte
	self         bool
	numeric      bool
}

func parseOp(s string) (rules.Op, error) {
	switch s {
	case "=":
		return rules.OpEq, nil
	case "!=":
		return rules.OpNe, nil
	case "<":
		return rules.OpLt, nil
	case "<=":
		return rules.OpLe, nil
	case ">":
		return rules.OpGt, nil
	case ">=":
		return rules.OpGe, nil
	case "contains":
		return rules.OpContains, nil
	}
	return 0, fmt.Errorf("core: unknown operator %q", s)
}

func (e *Engine) groupByID(id int64) (*groupInfo, error) {
	rows, err := e.db.Query(`SELECT group_id, left_class, left_prop, op, right_prop, right_class,
		register_side, is_self, group_key FROM RuleGroups WHERE group_id = ?`, rdb.NewInt(id))
	if err != nil {
		return nil, err
	}
	if rows.Empty() {
		return nil, fmt.Errorf("core: no rule group %d", id)
	}
	return decodeGroup(rows.Data[0])
}

func decodeGroup(row []rdb.Value) (*groupInfo, error) {
	op, err := parseOp(row[3].Str)
	if err != nil {
		return nil, err
	}
	g := &groupInfo{
		id:         row[0].Int,
		leftClass:  row[1].Str,
		leftProp:   row[2].Str,
		op:         op,
		rightProp:  row[4].Str,
		rightClass: row[5].Str,
		self:       row[7].Bool,
	}
	g.registerSide = 'L'
	if row[6].Str == "R" {
		g.registerSide = 'R'
	}
	// The numeric flag is part of the group key rather than a column of its
	// own; decode it from there.
	g.numeric = strings.Contains(row[8].Str, "num=true")
	return g, nil
}

// decomposeNormalRule decomposes one normalized rule into atomic rules
// (paper §3.3.1) and returns the end rule id. Newly created atomic rule ids
// are recorded in the context in bottom-up dependency order.
func (e *Engine) decomposeNormalRule(nr *rules.NormalRule, ctx *internCtx) (int64, error) {
	varClass := map[string]string{}
	for _, b := range nr.Search {
		varClass[b.Var] = b.Extension
	}

	type constPred struct {
		prop    string
		op      rules.Op
		value   rules.Const
		numeric bool
	}
	constPreds := map[string][]constPred{}
	type joinPred struct {
		lVar, lProp string
		op          rules.Op
		rVar, rProp string
		numeric     bool
	}
	var joins []joinPred
	var selfs []joinPred

	propNumeric := func(class, prop string) bool {
		if prop == "" {
			return false
		}
		c, ok := e.schema.Class(class)
		if !ok {
			return false
		}
		def, ok := c.Property(prop)
		if !ok {
			return false
		}
		return def.Type == rdf.TypeInteger || def.Type == rdf.TypeFloat
	}

	for _, p := range nr.Where {
		lConst := p.Left.Kind == rules.OperandConst
		rConst := p.Right.Kind == rules.OperandConst
		switch {
		case lConst && rConst:
			return 0, fmt.Errorf("core: predicate %q compares two constants", p.Text())
		case lConst || rConst:
			// Normalize to path-op-const.
			pathSide, constSide, op := p.Left, p.Right, p.Op
			if lConst {
				flipped, ok := flipOp(p.Op)
				if !ok {
					return 0, fmt.Errorf("core: %q: contains with constant left operand is not supported", p.Text())
				}
				pathSide, constSide, op = p.Right, p.Left, flipped
			}
			v := pathSide.Var
			prop := rdf.SubjectProperty
			if len(pathSide.Path) == 1 {
				prop = pathSide.Path[0].Property
			}
			numeric := constSide.Const.Kind != rules.ConstString && propNumeric(varClass[v], prop)
			constPreds[v] = append(constPreds[v], constPred{prop: prop, op: op, value: constSide.Const, numeric: numeric})
		default:
			lp, rp := "", ""
			if len(p.Left.Path) == 1 {
				lp = p.Left.Path[0].Property
			}
			if len(p.Right.Path) == 1 {
				rp = p.Right.Path[0].Property
			}
			jp := joinPred{lVar: p.Left.Var, lProp: lp, op: p.Op, rVar: p.Right.Var, rProp: rp}
			jp.numeric = propNumeric(varClass[jp.lVar], jp.lProp) && propNumeric(varClass[jp.rVar], jp.rProp)
			if jp.lVar == jp.rVar {
				if jp.lProp == "" && jp.rProp == "" {
					continue // v = v is trivially true
				}
				selfs = append(selfs, jp)
			} else {
				joins = append(joins, jp)
			}
		}
	}

	// Step 1 (§3.3.1): one triggering rule per constant predicate; variables
	// without any constant predicate get a triggering rule without a where
	// clause.
	rep := map[string]int64{}
	for _, b := range nr.Search {
		preds := constPreds[b.Var]
		var ids []int64
		if len(preds) == 0 {
			id, err := e.internTrigger(triggerSpec{class: b.Extension, any: true}, ctx)
			if err != nil {
				return 0, err
			}
			ids = []int64{id}
		} else {
			for _, cp := range preds {
				id, err := e.internTrigger(triggerSpec{
					class: b.Extension, property: cp.prop, op: cp.op, value: cp.value, numeric: cp.numeric,
				}, ctx)
				if err != nil {
					return 0, err
				}
				ids = append(ids, id)
			}
		}
		// Multiple triggering rules over one variable intersect via bare
		// merge join rules (RuleE in the paper's example: "search RuleA a,
		// RuleB b register a where a = b").
		cur := ids[0]
		for _, next := range ids[1:] {
			id, err := e.internJoin(joinSpec{
				leftRule: cur, rightRule: next,
				leftClass: b.Extension, rightClass: b.Extension,
				op: rules.OpEq, registerSide: 'L',
			}, ctx)
			if err != nil {
				return 0, err
			}
			cur = id
		}
		rep[b.Var] = cur
	}

	// Step 2: self predicates refine a single variable's rule.
	for _, sp := range selfs {
		if sp.lProp == "" || sp.rProp == "" {
			return 0, fmt.Errorf("core: self predicate must access two properties")
		}
		id, err := e.internJoin(joinSpec{
			leftRule: rep[sp.lVar], rightRule: rep[sp.lVar],
			leftClass: varClass[sp.lVar], rightClass: varClass[sp.lVar],
			leftProp: sp.lProp, rightProp: sp.rProp,
			op: sp.op, registerSide: 'L', self: true, numeric: sp.numeric,
		}, ctx)
		if err != nil {
			return 0, err
		}
		rep[sp.lVar] = id
	}

	// Step 3: join predicates between variables, eliminating leaf variables
	// until only the register variable remains. The elimination order keeps
	// every intermediate result a set of single resources (the paper's
	// dependency trees are exactly such leaf-elimination orders).
	live := map[string]bool{}
	for _, b := range nr.Search {
		live[b.Var] = true
	}
	remaining := joins
	for len(remaining) > 0 {
		// Count predicates per live variable.
		degree := map[string]int{}
		for _, jp := range remaining {
			degree[jp.lVar]++
			degree[jp.rVar]++
		}
		leafIdx := -1
		var leafVar string
		for i, jp := range remaining {
			for _, v := range []string{jp.lVar, jp.rVar} {
				if v != nr.Register && degree[v] == 1 {
					leafIdx, leafVar = i, v
					break
				}
			}
			if leafIdx >= 0 {
				break
			}
		}
		if leafIdx < 0 {
			return 0, fmt.Errorf("core: rule %q has a cyclic join graph; decomposition into a dependency tree is impossible", nr.Text())
		}
		jp := remaining[leafIdx]
		remaining = append(remaining[:leafIdx], remaining[leafIdx+1:]...)

		spec := joinSpec{
			leftRule: rep[jp.lVar], rightRule: rep[jp.rVar],
			leftClass: varClass[jp.lVar], rightClass: varClass[jp.rVar],
			leftProp: jp.lProp, rightProp: jp.rProp,
			op: jp.op, numeric: jp.numeric,
		}
		survivor := jp.rVar
		if leafVar == jp.rVar {
			survivor = jp.lVar
			spec.registerSide = 'L'
		} else {
			spec.registerSide = 'R'
		}
		id, err := e.internJoin(spec, ctx)
		if err != nil {
			return 0, err
		}
		rep[survivor] = id
		delete(live, leafVar)
	}

	// Connectivity: all variables must have merged into the register
	// variable; anything else would be a cartesian product.
	for v := range live {
		if v != nr.Register {
			return 0, fmt.Errorf("core: rule %q: variable %q is not connected to the registered variable", nr.Text(), v)
		}
	}
	end, ok := rep[nr.Register]
	if !ok {
		return 0, fmt.Errorf("core: rule %q: register variable has no rule", nr.Text())
	}
	return end, nil
}

// initQueries evaluates a freshly created triggering rule against the full
// metadata store (Statements) to bootstrap its materialization, so later
// join evaluations can use it (paper §3.4: results are materialized).
func (e *Engine) initializeTrigger(id int64, spec triggerSpec) error {
	var q string
	params := []rdb.Value{}
	if spec.any {
		q = `SELECT uri_reference FROM Resources WHERE class = ?`
		params = append(params, rdb.NewText(spec.class))
	} else {
		cmp, cast := sqlCompare(spec.op, spec.numeric)
		lhs, rhs := "value", "?"
		cmpParam := rdb.NewText(spec.value.Lexical())
		if cast {
			if e.opts.DisableTypedIndexes {
				lhs, rhs = "CAST(value AS FLOAT)", "CAST(? AS FLOAT)"
			} else {
				// Typed path: the (class, property, num_value) statement
				// index answers this with a point lookup or range scan.
				lhs = "num_value"
				cmpParam = numValue(spec.value.Lexical())
			}
		}
		q = `SELECT uri_reference FROM Statements WHERE class = ? AND property = ? AND ` +
			lhs + " " + cmp + " " + rhs
		params = append(params, rdb.NewText(spec.class), rdb.NewText(spec.property), cmpParam)
	}
	// Collect first: materialize issues writes, which must not run inside
	// the streaming read query.
	seen := map[string]bool{}
	var uris []string
	err := e.db.QueryFunc(q, params, func(row []rdb.Value) error {
		if uri := row[0].Str; !seen[uri] {
			seen[uri] = true
			uris = append(uris, uri)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, uri := range uris {
		if err := e.materialize(id, uri); err != nil {
			return err
		}
	}
	return nil
}

// initializeJoin evaluates a freshly created join rule over the full
// materialized results of its inputs.
func (e *Engine) initializeJoin(id int64, spec joinSpec) error {
	g := &groupInfo{
		leftClass: spec.leftClass, leftProp: spec.leftProp, op: spec.op,
		rightProp: spec.rightProp, rightClass: spec.rightClass,
		registerSide: spec.registerSide, self: spec.self, numeric: spec.numeric,
	}
	matches, err := e.evalJoinFull(g, spec.leftRule, spec.rightRule)
	if err != nil {
		return err
	}
	for _, uri := range matches {
		if has, err := e.hasResult(id, uri); err != nil {
			return err
		} else if !has {
			if err := e.materialize(id, uri); err != nil {
				return err
			}
		}
	}
	return nil
}

// sqlCompare maps a rule operator to the SQL comparison and whether both
// sides are CAST to FLOAT (the paper's string-stored numeric constants).
func sqlCompare(op rules.Op, numeric bool) (string, bool) {
	switch op {
	case rules.OpEq:
		return "=", numeric
	case rules.OpNe:
		return "!=", numeric
	case rules.OpLt:
		return "<", true
	case rules.OpLe:
		return "<=", true
	case rules.OpGt:
		return ">", true
	case rules.OpGe:
		return ">=", true
	case rules.OpContains:
		return "CONTAINS", false
	}
	return "=", false
}

// hasResult reports whether (rule, uri) is materialized.
func (e *Engine) hasResult(rule int64, uri string) (bool, error) {
	rows, err := e.prep.resultHas.Query(rdb.NewInt(rule), rdb.NewText(uri))
	if err != nil {
		return false, err
	}
	return !rows.Empty(), nil
}

// materialize records (rule, uri) in RuleResults.
func (e *Engine) materialize(rule int64, uri string) error {
	_, err := e.prep.resultIns.Exec(rdb.NewInt(rule), rdb.NewText(uri))
	return err
}

// unmaterialize removes (rule, uri) from RuleResults.
func (e *Engine) unmaterialize(rule int64, uri string) error {
	_, err := e.prep.resultDel.Exec(rdb.NewInt(rule), rdb.NewText(uri))
	return err
}

// RuleResultsOf returns the materialized matches of an atomic rule, for
// tests and the initial cache fill on subscription.
func (e *Engine) RuleResultsOf(rule int64) ([]string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ruleResultsOfLocked(rule)
}

func (e *Engine) ruleResultsOfLocked(rule int64) ([]string, error) {
	rows, err := e.db.Query(`SELECT uri_reference FROM RuleResults WHERE rule_id = ? ORDER BY uri_reference`,
		rdb.NewInt(rule))
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, rows.Len())
	for _, r := range rows.Data {
		out = append(out, r[0].Str)
	}
	return out, nil
}
