package core

import (
	"testing"

	"mdv/internal/rdf"
)

// Tests for the per-operator triggering machinery (FilterRules tables).

func floatSchema() *rdf.Schema {
	s := rdf.NewSchema()
	s.MustAddProperty("Offer", rdf.PropertyDef{Name: "price", Type: rdf.TypeFloat})
	s.MustAddProperty("Offer", rdf.PropertyDef{Name: "title", Type: rdf.TypeString})
	return s
}

func offerDoc(uri, price, title string) *rdf.Document {
	doc := rdf.NewDocument(uri)
	o := doc.NewResource("o", "Offer")
	o.Add("price", rdf.Lit(price))
	o.Add("title", rdf.Lit(title))
	return doc
}

// TestNumericEqualityLexicalVariance: numeric equality must reconvert
// (paper §3.3.4: constants stored as strings) — "8.50" matches the rule
// constant 8.5 even though the lexical forms differ.
func TestNumericEqualityLexicalVariance(t *testing.T) {
	e, err := NewEngine(floatSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Subscribe("lmr", `search Offer o register o where o.price = 8.5`); err != nil {
		t.Fatal(err)
	}
	// Lexically different, numerically equal.
	ps, err := e.RegisterDocument(offerDoc("a.rdf", "8.50", "cheap"))
	if err != nil {
		t.Fatal(err)
	}
	if cs := ps.Changesets["lmr"]; cs == nil || len(cs.Upserts) != 1 {
		t.Errorf("8.50 did not match rule constant 8.5: %+v", cs)
	}
	// Integer lexical form of the same value.
	if _, _, err := e.Subscribe("lmr", `search Offer o register o where o.price = 12`); err != nil {
		t.Fatal(err)
	}
	ps, err = e.RegisterDocument(offerDoc("b.rdf", "12.0", "twelve"))
	if err != nil {
		t.Fatal(err)
	}
	if cs := ps.Changesets["lmr"]; cs == nil || len(cs.Upserts) != 1 {
		t.Errorf("12.0 did not match rule constant 12: %+v", cs)
	}
	// String equality must NOT be numeric: a title rule stays exact.
	if _, _, err := e.Subscribe("lmr", `search Offer o register o where o.title = '12'`); err != nil {
		t.Fatal(err)
	}
	ps, err = e.RegisterDocument(offerDoc("c.rdf", "1", "12.0"))
	if err != nil {
		t.Fatal(err)
	}
	if cs := ps.Changesets["lmr"]; cs != nil {
		for _, up := range cs.Upserts {
			if up.Resource.URIRef == "c.rdf#o" {
				t.Error("string equality coerced numerically")
			}
		}
	}
}

// TestContainsOnBareVariable: contains applies to the URI reference when
// used on a bare variable.
func TestContainsOnBareVariable(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr",
		`search CycleProvider c register c where c contains 'passau'`); err != nil {
		t.Fatal(err)
	}
	doc := rdf.NewDocument("passau-north.rdf")
	doc.NewResource("cp", "CycleProvider")
	ps, err := e.RegisterDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	if cs := ps.Changesets["lmr"]; cs == nil || len(cs.Upserts) != 1 {
		t.Errorf("URI contains match failed: %+v", cs)
	}
	doc2 := rdf.NewDocument("munich.rdf")
	doc2.NewResource("cp", "CycleProvider")
	ps, err = e.RegisterDocument(doc2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Subscribers()) != 0 {
		t.Error("non-matching URI delivered")
	}
}

// TestAllComparisonOperatorsTrigger: each operator lands in its own filter
// table and matches correctly.
func TestAllComparisonOperatorsTrigger(t *testing.T) {
	e := newTestEngine(t)
	cases := []struct {
		rule    string
		match   string // serverPort value that matches
		nomatch string
	}{
		{`search CycleProvider c register c where c.serverPort = 10`, "10", "11"},
		{`search CycleProvider c register c where c.serverPort != 10`, "11", "10"},
		{`search CycleProvider c register c where c.serverPort < 10`, "9", "10"},
		{`search CycleProvider c register c where c.serverPort <= 10`, "10", "11"},
		{`search CycleProvider c register c where c.serverPort > 10`, "11", "10"},
		{`search CycleProvider c register c where c.serverPort >= 10`, "10", "9"},
	}
	subByRule := map[int]int64{}
	for i, c := range cases {
		id, _, err := e.Subscribe("lmr", c.rule)
		if err != nil {
			t.Fatalf("%s: %v", c.rule, err)
		}
		subByRule[i] = id
	}
	docNum := 0
	register := func(port string) map[int64]bool {
		t.Helper()
		docNum++
		doc := rdf.NewDocument(rdf.NewDocument("x").URI + string(rune('a'+docNum)) + ".rdf")
		cp := doc.NewResource("cp", "CycleProvider")
		cp.Add("serverPort", rdf.Lit(port))
		ps, err := e.RegisterDocument(doc)
		if err != nil {
			t.Fatal(err)
		}
		got := map[int64]bool{}
		if cs := ps.Changesets["lmr"]; cs != nil {
			for _, up := range cs.Upserts {
				for _, id := range up.SubIDs {
					got[id] = true
				}
			}
		}
		return got
	}
	for i, c := range cases {
		if got := register(c.match); !got[subByRule[i]] {
			t.Errorf("rule %q did not match port %s", c.rule, c.match)
		}
		if got := register(c.nomatch); got[subByRule[i]] {
			t.Errorf("rule %q wrongly matched port %s", c.rule, c.nomatch)
		}
	}
	// Table placement: one row per operator table (NE with a numeric
	// constant lands in the reconverting NEN table).
	for _, table := range []string{"FilterRulesEQN", "FilterRulesNEN", "FilterRulesLT",
		"FilterRulesLE", "FilterRulesGT", "FilterRulesGE"} {
		if n := e.count(table); n != 1 {
			t.Errorf("%s has %d rows, want 1", table, n)
		}
	}
}
