package core

import (
	"sort"
	"strings"
	"sync"
	"time"

	"mdv/internal/rdb"
	"mdv/internal/rdb/sql"
	"mdv/internal/rules"
)

// stmtCache caches prepared statements for the dynamically shaped join
// queries (shape depends on operator and which operands access properties;
// classes and property names are passed as parameters). It is RW-locked so
// concurrent readers resolving an already cached shape never serialize;
// only a cache miss takes the exclusive lock to prepare and insert.
type stmtCache struct {
	mu sync.RWMutex
	m  map[string]*sql.Stmt
}

func (e *Engine) cachedStmt(text string) (*sql.Stmt, error) {
	e.cache.mu.RLock()
	st, ok := e.cache.m[text]
	e.cache.mu.RUnlock()
	if ok {
		return st, nil
	}
	e.cache.mu.Lock()
	defer e.cache.mu.Unlock()
	if e.cache.m == nil {
		e.cache.m = make(map[string]*sql.Stmt)
	}
	if st, ok := e.cache.m[text]; ok {
		return st, nil
	}
	st, err := e.db.Prepare(text)
	if err != nil {
		return nil, err
	}
	e.cache.m[text] = st
	return st, nil
}

// matchSet accumulates (rule, uri) matches of one filter run.
type matchSet struct {
	byRule map[int64]map[string]bool
}

func newMatchSet() *matchSet {
	return &matchSet{byRule: make(map[int64]map[string]bool)}
}

// add records a match and reports whether it is new within this set.
func (m *matchSet) add(rule int64, uri string) bool {
	set := m.byRule[rule]
	if set == nil {
		set = make(map[string]bool)
		m.byRule[rule] = set
	}
	if set[uri] {
		return false
	}
	set[uri] = true
	return true
}

func (m *matchSet) has(rule int64, uri string) bool {
	return m.byRule[rule][uri]
}

// uris returns the sorted matches of one rule.
func (m *matchSet) uris(rule int64) []string {
	set := m.byRule[rule]
	out := make([]string, 0, len(set))
	for uri := range set {
		out = append(out, uri)
	}
	sort.Strings(out)
	return out
}

// filterMode controls materialization during a run.
type filterMode uint8

const (
	// modeMaterialize records new matches in RuleResults and propagates
	// only matches not materialized before (normal registration, §3.4).
	modeMaterialize filterMode = iota
	// modeCollect finds matches of the given atoms without touching
	// RuleResults; propagation is deduplicated within the run only. Used
	// for the old-version run of §3.5 (the caller unmaterializes the
	// result afterwards) and for the candidate re-check run.
	modeCollect
)

// runFilter executes the filter algorithm (paper §3.4) over the given
// atoms: loads them into FilterData, determines affected triggering rules,
// then iteratively evaluates dependent join rules until no new results
// appear. It returns every (atomic rule, resource) match derived in this
// run.
func (e *Engine) runFilter(atoms []preparedAtom, mode filterMode) (*matchSet, error) {
	e.stats.FilterRuns++
	if _, err := e.prep.clearFilter.Exec(); err != nil {
		return nil, err
	}

	all := newMatchSet()
	var delta []matchPair

	// Phase 1: affected triggering rules (Figure 9, initial iteration):
	// load the atoms into the FilterData scratch and join them against the
	// filter tables — serially on the engine database, or fanned across the
	// per-shard sections with a deterministic shard-order merge (shard.go).
	// Matches are collected first and the materialization bookkeeping runs
	// after: mutating statements must not run inside a streaming query.
	tTrig := time.Now()
	var trigPairs []matchPair
	var err error
	if e.shards != nil {
		trigPairs, err = e.collectTriggeringSharded(atoms)
	} else {
		trigPairs, err = e.collectTriggeringSerial(atoms)
	}
	if err != nil {
		return nil, err
	}
	for _, p := range trigPairs {
		if !all.add(p.rule, p.uri) {
			continue
		}
		e.stats.TriggeringMatches++
		isNew, err := e.noteMatch(p.rule, p.uri, mode)
		if err != nil {
			return nil, err
		}
		if isNew {
			delta = append(delta, p)
		}
	}
	e.observeStage(stageTriggering, tTrig)

	// Phase 2: iterate dependent join rules through ResultObjects until a
	// fixpoint (the dependency graph is a DAG, so this terminates after at
	// most longest-path iterations; §3.4).
	tJoin := time.Now()
	for len(delta) > 0 {
		if err := e.loadResultObjects(delta); err != nil {
			return nil, err
		}
		next, err := e.evaluateDependentGroups(all, mode)
		if err != nil {
			return nil, err
		}
		delta = next
	}
	e.observeStage(stageJoin, tJoin)
	// Drop the run's scratch. It is also cleared defensively at run start,
	// but leaving it resident would hold the last batch's atoms in memory
	// between publishes and leave residue that keeps the engine's quiescent
	// state from being byte-identical across a subscribe/unsubscribe cycle.
	if _, err := e.prep.clearFilter.Exec(); err != nil {
		return nil, err
	}
	if _, err := e.db.Exec(`DELETE FROM ResultObjects`); err != nil {
		return nil, err
	}
	return all, nil
}

// collectTriggeringSerial is the serial phase 1: load every atom into the
// engine database's FilterData (one batched insert) and run the ten
// triggering queries in canonical operator order. The scratch stays loaded
// until runFilter's end-of-run clear, exactly as before sharding existed.
func (e *Engine) collectTriggeringSerial(atoms []preparedAtom) ([]matchPair, error) {
	rows := make([][]rdb.Value, len(atoms))
	for i, pa := range atoms {
		a := pa.stmt
		rows[i] = []rdb.Value{rdb.NewText(a.URIRef), rdb.NewText(a.Class), rdb.NewText(a.Property),
			rdb.NewText(a.Value), pa.num, rdb.NewBool(a.IsRef)}
	}
	if _, err := e.prep.insFilterData.ExecBatch(rows); err != nil {
		return nil, err
	}
	var pairs []matchPair
	for i, st := range e.prep.trig {
		t0 := time.Now()
		// The CON slot runs through the substring index when enabled: one
		// automaton pass per atom instead of the per-rule CONTAINS join.
		if i == conTrigIdx && e.text != nil {
			pairs = e.text.collect(atoms, pairs)
			e.traceTrig(trigOpNames[i], time.Since(t0))
			continue
		}
		err := st.QueryFunc(nil, func(row []rdb.Value) error {
			pairs = append(pairs, matchPair{rule: row[0].Int, uri: row[1].Str})
			return nil
		})
		if err != nil {
			return nil, err
		}
		e.traceTrig(trigOpNames[i], time.Since(t0))
	}
	return pairs, nil
}

type matchPair struct {
	rule int64
	uri  string
}

// noteMatch handles materialization bookkeeping for a derived match and
// reports whether it should propagate to the next iteration.
func (e *Engine) noteMatch(rule int64, uri string, mode filterMode) (bool, error) {
	switch mode {
	case modeMaterialize:
		has, err := e.hasResult(rule, uri)
		if err != nil {
			return false, err
		}
		if has {
			return false, nil
		}
		return true, e.materialize(rule, uri)
	default: // modeCollect
		return true, nil
	}
}

// loadResultObjects replaces the ResultObjects table with the delta.
func (e *Engine) loadResultObjects(delta []matchPair) error {
	if _, err := e.db.Exec(`DELETE FROM ResultObjects`); err != nil {
		return err
	}
	ins := e.prep.resultObjIns
	for _, p := range delta {
		if _, err := ins.Exec(rdb.NewText(p.uri), rdb.NewInt(p.rule)); err != nil {
			return err
		}
	}
	return nil
}

// evaluateDependentGroups finds the rule groups fed by the current
// ResultObjects and evaluates each once per affected side (§3.3.3: grouped
// join rules are evaluated together; §3.4: inputs are the delta plus the
// materialized results of the other side).
func (e *Engine) evaluateDependentGroups(all *matchSet, mode filterMode) ([]matchPair, error) {
	type task struct {
		group int64
		side  byte // 'L' or 'R' delta side
	}
	var tasks []task
	seen := map[task]bool{}
	collect := func(q string, side byte) error {
		rows, err := e.db.Query(q)
		if err != nil {
			return err
		}
		for _, r := range rows.Data {
			t := task{group: r[0].Int, side: side}
			if !seen[t] {
				seen[t] = true
				tasks = append(tasks, t)
			}
		}
		return nil
	}
	// GroupFeeds holds one row per (input rule, side, group), so this scans
	// the groups the delta actually feeds — not every join rule sharing
	// them (a shared triggering rule can feed the whole rule base).
	if err := collect(`SELECT DISTINCT gf.group_id FROM GroupFeeds gf, ResultObjects ro
		WHERE gf.source_rule = ro.rule_id AND gf.side = 'L'`, 'L'); err != nil {
		return nil, err
	}
	if err := collect(`SELECT DISTINCT gf.group_id FROM GroupFeeds gf, ResultObjects ro
		WHERE gf.source_rule = ro.rule_id AND gf.side = 'R'`, 'R'); err != nil {
		return nil, err
	}
	// Deterministic evaluation order.
	sort.Slice(tasks, func(a, b int) bool {
		if tasks[a].group != tasks[b].group {
			return tasks[a].group < tasks[b].group
		}
		return tasks[a].side < tasks[b].side
	})
	if len(tasks) > 0 {
		e.stats.FilterIterations++
	}

	var next []matchPair
	for _, t := range tasks {
		g, err := e.groupByID(t.group)
		if err != nil {
			return nil, err
		}
		if g.self && t.side == 'R' {
			continue // self groups have a single input side
		}
		e.stats.JoinEvaluations++
		t0 := time.Now()
		pairs, err := e.evalGroupDelta(g, t.side)
		if err != nil {
			return nil, err
		}
		e.traceGroup(t.group, time.Since(t0))
		for _, p := range pairs {
			if !all.add(p.rule, p.uri) {
				continue
			}
			e.stats.JoinMatches++
			isNew, err := e.noteMatch(p.rule, p.uri, mode)
			if err != nil {
				return nil, err
			}
			if isNew {
				next = append(next, p)
			}
		}
	}
	return next, nil
}

// evalGroupDelta evaluates one rule group with the delta on the given side
// and the materialized results on the other (§3.4, "Evaluation of Join
// Rules").
func (e *Engine) evalGroupDelta(g *groupInfo, deltaSide byte) ([]matchPair, error) {
	text, params := e.buildGroupSQL(g, deltaSide)
	st, err := e.cachedStmt(text)
	if err != nil {
		return nil, err
	}
	var out []matchPair
	err = st.QueryFunc(params, func(row []rdb.Value) error {
		out = append(out, matchPair{rule: row[0].Int, uri: row[1].Str})
		return nil
	})
	return out, err
}

// evalJoinFull evaluates one join rule over the full materialized results
// of both inputs (used when a new rule is registered, to bootstrap its own
// materialization against already stored metadata).
func (e *Engine) evalJoinFull(g *groupInfo, leftRule, rightRule int64) ([]string, error) {
	text, params := e.buildFullJoinSQL(g, leftRule, rightRule)
	st, err := e.cachedStmt(text)
	if err != nil {
		return nil, err
	}
	var out []string
	err = st.QueryFunc(params, func(row []rdb.Value) error {
		out = append(out, row[0].Str)
		return nil
	})
	return out, err
}

// compareSQL renders "<lhs> <op> <rhs>". Numeric comparisons use the typed
// num_value columns (backed by ordered indexes) unless the engine runs the
// CAST ablation, which reconverts the string-stored values at match time
// (paper §3.3.4).
func (e *Engine) compareSQL(lhs, rhs string, op rules.Op, numeric bool) string {
	cmp, cast := sqlCompare(op, numeric)
	if cast {
		if e.opts.DisableTypedIndexes {
			lhs = "CAST(" + lhs + " AS FLOAT)"
			rhs = "CAST(" + rhs + " AS FLOAT)"
		} else {
			lhs, rhs = numCol(lhs), numCol(rhs)
		}
	}
	return lhs + " " + cmp + " " + rhs
}

// numCol rewrites a Statements value expression to its typed numeric
// column. Numeric comparisons always compare property values (the rule
// normalizer types bare URIs as strings), so the operand is always a
// "<alias>.value" reference.
func numCol(expr string) string {
	return strings.TrimSuffix(expr, ".value") + ".num_value"
}

// buildGroupSQL constructs the delta-evaluation query of one rule group.
// This is where the batched group evaluation of §3.3.3 pays off: for
// equi-joins the query starts from the delta resources, resolves the join
// partner through value indexes, and only then probes JoinRules by both
// rule ids — so the cost is proportional to the delta and its join fan-out,
// not to the number of join rules in the group. With typed indexes, numeric
// equi-joins resolve the partner the same way through the (class, property,
// num_value) statement index; only the CAST ablation falls back to
// enumerating group members. For non-equality comparisons the query
// enumerates the group members first and their materialized inputs after
// (the same rule-base-size dependence the paper measures for COMP-style
// predicates), though typed engines at least skip the per-row CAST.
//
// Classes and property names are parameters; only the operator and operand
// shapes are baked into the text, so the statement cache stays small.
func (e *Engine) buildGroupSQL(g *groupInfo, deltaSide byte) (string, []rdb.Value) {
	// View the join from the delta side: d* is the delta input, f* the full
	// (materialized) side.
	dProp, fProp := g.leftProp, g.rightProp
	dRule, fRule := "jr.left_rule", "jr.right_rule"
	fClass := g.rightClass
	op := g.op
	outDelta := g.registerSide == 'L'
	flipped := false
	if deltaSide == 'R' {
		dProp, fProp = g.rightProp, g.leftProp
		dRule, fRule = "jr.right_rule", "jr.left_rule"
		fClass = g.leftClass
		outDelta = g.registerSide == 'R'
		flipped = true
	}

	var from []string
	var where []string
	var params []rdb.Value

	if g.self {
		// Single resource, two property accesses; member probe last.
		from = append(from, "ResultObjects ro", "Statements s1", "Statements s2", "JoinRules jr")
		where = append(where,
			"s1.uri_reference = ro.uri_reference", "s1.property = ?",
			"s2.uri_reference = ro.uri_reference", "s2.property = ?",
			e.compareSQL("s1.value", "s2.value", g.op, g.numeric),
			"jr.group_id = ?", dRule+" = ro.rule_id")
		params = append(params, rdb.NewText(g.leftProp), rdb.NewText(g.rightProp), rdb.NewInt(g.id))
		text := "SELECT jr.rule_id, ro.uri_reference FROM " + strings.Join(from, ", ") +
			" WHERE " + strings.Join(where, " AND ")
		return text, params
	}

	from = append(from, "ResultObjects ro")
	deltaVal := "ro.uri_reference"
	if dProp != "" {
		from = append(from, "Statements sd")
		where = append(where, "sd.uri_reference = ro.uri_reference", "sd.property = ?")
		params = append(params, rdb.NewText(dProp))
		deltaVal = "sd.value"
	}

	// Orient the comparison as originally written (left op right).
	cmp := func(dv, fv string) string {
		if flipped {
			return e.compareSQL(fv, dv, op, g.numeric)
		}
		return e.compareSQL(dv, fv, op, g.numeric)
	}

	// Equi-joins resolve the partner through an index: string equality via
	// the (class, property, value) statement index, numeric equality via
	// the typed (class, property, num_value) one (unavailable under the
	// CAST ablation, which must reconvert and therefore enumerate).
	eqJoin := op == rules.OpEq && (!g.numeric || !e.opts.DisableTypedIndexes)
	var outFull string
	if eqJoin {
		// Resolve the full-side resource through value indexes, then check
		// group membership: jr is probed by (left_rule, right_rule).
		if fProp == "" {
			// Full side joined by its URI: RuleResults rows for that URI.
			from = append(from, "RuleResults rr")
			where = append(where, "rr.uri_reference = "+deltaVal)
		} else {
			// Full side joined by property value: the statement index finds
			// the partner, then its RuleResults rows.
			join := "sf.value = " + deltaVal
			if g.numeric {
				join = "sf.num_value = " + numCol(deltaVal)
			}
			from = append(from, "Statements sf", "RuleResults rr")
			where = append(where,
				"sf.class = ?", "sf.property = ?", join,
				"rr.uri_reference = sf.uri_reference")
			params = append(params, rdb.NewText(fClass), rdb.NewText(fProp))
		}
		from = append(from, "JoinRules jr")
		where = append(where, dRule+" = ro.rule_id", fRule+" = rr.rule_id", "jr.group_id = ?")
		params = append(params, rdb.NewInt(g.id))
		outFull = "rr.uri_reference"
	} else {
		// General comparison: enumerate members, then the full side's
		// materialized results, and compare.
		from = append(from, "JoinRules jr", "RuleResults rr")
		where = append(where, "jr.group_id = ?", dRule+" = ro.rule_id", "rr.rule_id = "+fRule)
		params = append(params, rdb.NewInt(g.id))
		fullVal := "rr.uri_reference"
		if fProp != "" {
			from = append(from, "Statements sf")
			where = append(where, "sf.uri_reference = rr.uri_reference", "sf.property = ?")
			params = append(params, rdb.NewText(fProp))
			fullVal = "sf.value"
		}
		where = append(where, cmp(deltaVal, fullVal))
		outFull = "rr.uri_reference"
	}
	out := "ro.uri_reference"
	if !outDelta {
		out = outFull
	}
	text := "SELECT jr.rule_id, " + out + " FROM " + strings.Join(from, ", ") +
		" WHERE " + strings.Join(where, " AND ")
	return text, params
}

// buildFullJoinSQL constructs the full-evaluation query for one join rule
// (both sides from RuleResults), used at rule registration time.
func (e *Engine) buildFullJoinSQL(g *groupInfo, leftRule, rightRule int64) (string, []rdb.Value) {
	var from []string
	var where []string
	var params []rdb.Value

	if g.self {
		from = append(from, "RuleResults rl", "Statements s1", "Statements s2")
		where = append(where, "rl.rule_id = ?",
			"s1.uri_reference = rl.uri_reference", "s1.property = ?",
			"s2.uri_reference = rl.uri_reference", "s2.property = ?",
			e.compareSQL("s1.value", "s2.value", g.op, g.numeric))
		params = append(params, rdb.NewInt(leftRule), rdb.NewText(g.leftProp), rdb.NewText(g.rightProp))
		return "SELECT rl.uri_reference FROM " + strings.Join(from, ", ") +
			" WHERE " + strings.Join(where, " AND "), params
	}

	from = append(from, "RuleResults rl")
	where = append(where, "rl.rule_id = ?")
	params = append(params, rdb.NewInt(leftRule))
	leftVal := "rl.uri_reference"
	if g.leftProp != "" {
		from = append(from, "Statements sl")
		where = append(where, "sl.uri_reference = rl.uri_reference", "sl.property = ?")
		params = append(params, rdb.NewText(g.leftProp))
		leftVal = "sl.value"
	}

	eqJoin := g.op == rules.OpEq && (!g.numeric || !e.opts.DisableTypedIndexes)
	var rightURI string
	switch {
	case eqJoin && g.rightProp == "":
		from = append(from, "RuleResults rr")
		where = append(where, "rr.rule_id = ?", "rr.uri_reference = "+leftVal)
		params = append(params, rdb.NewInt(rightRule))
		rightURI = "rr.uri_reference"
	case eqJoin && g.rightProp != "":
		join := "sr.value = " + leftVal
		if g.numeric {
			join = "sr.num_value = " + numCol(leftVal)
		}
		from = append(from, "Statements sr", "RuleResults rr")
		where = append(where,
			"sr.class = ?", "sr.property = ?", join,
			"rr.rule_id = ?", "rr.uri_reference = sr.uri_reference")
		params = append(params, rdb.NewText(g.rightClass), rdb.NewText(g.rightProp), rdb.NewInt(rightRule))
		rightURI = "rr.uri_reference"
	default:
		from = append(from, "RuleResults rr")
		where = append(where, "rr.rule_id = ?")
		params = append(params, rdb.NewInt(rightRule))
		rightVal := "rr.uri_reference"
		if g.rightProp != "" {
			from = append(from, "Statements sr")
			where = append(where, "sr.uri_reference = rr.uri_reference", "sr.property = ?")
			params = append(params, rdb.NewText(g.rightProp))
			rightVal = "sr.value"
		}
		where = append(where, e.compareSQL(leftVal, rightVal, g.op, g.numeric))
		rightURI = "rr.uri_reference"
	}

	out := "rl.uri_reference"
	if g.registerSide == 'R' {
		out = rightURI
	}
	return "SELECT " + out + " FROM " + strings.Join(from, ", ") +
		" WHERE " + strings.Join(where, " AND "), params
}

// unmaterializeAll removes every match of the set from RuleResults (the
// cleanup step after the old-version run of §3.5).
func (e *Engine) unmaterializeAll(m *matchSet) error {
	for rule, uris := range m.byRule {
		for uri := range uris {
			if err := e.unmaterialize(rule, uri); err != nil {
				return err
			}
		}
	}
	return nil
}

// endRuleSubscribers maps an end rule to its subscriptions.
type subscriberRef struct {
	subID      int64
	subscriber string
}

func (e *Engine) subscribersOf(endRule int64) ([]subscriberRef, error) {
	rows, err := e.prep.subsOfEndRule.Query(rdb.NewInt(endRule))
	if err != nil {
		return nil, err
	}
	out := make([]subscriberRef, 0, rows.Len())
	for _, r := range rows.Data {
		out = append(out, subscriberRef{subID: r[0].Int, subscriber: r[1].Str})
	}
	return out, nil
}
