package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mdv/internal/rdb"
	"mdv/internal/rdf"
)

// RegisterDocument registers a single document. See RegisterDocuments.
func (e *Engine) RegisterDocument(doc *rdf.Document) (*PublishSet, error) {
	return e.RegisterDocuments([]*rdf.Document{doc})
}

// RegisterDocuments registers (or re-registers) a batch of RDF documents
// and runs the publish & subscribe filter over the batch. Re-registering a
// document with the same URI updates it: the engine diffs the versions
// (§3.5) and treats resources as added, updated, or deleted accordingly.
//
// The returned PublishSet contains the per-subscriber changesets: upserts
// for resources that newly or still match subscribed rules (with their
// strong-reference closures), removals for resources that no longer match
// a subscription, and forced deletes for resources removed at the source.
func (e *Engine) RegisterDocuments(docs []*rdf.Document) (*PublishSet, error) {
	// The CPU-bound per-document work — schema validation, serialization,
	// atom decomposition (§3.2), numeric-shadow parsing — is fanned out
	// across a worker pool BEFORE the exclusive section, so the engine
	// lock covers only the stored-version diff, table mutation, and the
	// filter run, and concurrent readers are blocked for less of each
	// registration.
	tStart := time.Now()
	seen := map[string]bool{}
	for _, doc := range docs {
		if seen[doc.URI] {
			return nil, fmt.Errorf("core: duplicate document %s in batch", doc.URI)
		}
		seen[doc.URI] = true
	}
	prep := e.prepareBatch(docs)
	for _, pd := range prep {
		if pd.err != nil {
			return nil, pd.err
		}
	}
	e.observeStage(stagePrepare, tStart)

	tLock := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observeStage(stageLockWait, tLock)

	// Slow-publish attribution: arm the per-statement trace for this
	// registration only when the slow log is configured (the trace maps cost
	// allocations the hot path should not pay otherwise).
	sl := e.obs.slow.Load()
	if sl != nil {
		e.obs.trace = &publishTrace{trig: map[string]time.Duration{}, group: map[int64]time.Duration{}}
		defer func() { e.obs.trace = nil }()
	}
	defer func() {
		total := time.Since(tStart)
		if m := e.obs.met.Load(); m != nil {
			m.publish.Observe(total.Seconds())
			m.batchDocs.Observe(float64(len(docs)))
		}
		if sl != nil && total >= sl.threshold {
			logSlowPublish(sl, len(docs), total, e.obs.trace)
		}
	}()

	var added, updatedNew, updatedOld, deleted []*rdf.Resource
	var changes []docChange
	atoms := map[*rdf.Resource][]preparedAtom{}

	for i, doc := range docs {
		old, isNew, err := e.loadStoredDocument(doc.URI)
		if err != nil {
			return nil, err
		}
		diff := rdf.DiffDocuments(old, doc)
		added = append(added, diff.Added...)
		updatedNew = append(updatedNew, diff.Updated...)
		updatedOld = append(updatedOld, diff.OldUpdated...)
		deleted = append(deleted, diff.Deleted...)
		changes = append(changes, docChange{doc: doc, content: prep[i].content, isNew: isNew})
		for r, pa := range prep[i].atoms {
			atoms[r] = pa
		}
	}

	// Reject cross-document URI collisions for added resources.
	for _, r := range added {
		rows, err := e.prep.resourceClass.Query(rdb.NewText(r.URIRef))
		if err != nil {
			return nil, err
		}
		if !rows.Empty() {
			return nil, fmt.Errorf("core: resource %s is already registered by document %s",
				r.URIRef, rows.Data[0][1].Str)
		}
	}

	e.stats.DocumentsRegistered += len(docs)
	e.stats.ResourcesRegistered += len(added) + len(updatedNew)

	// Capture, before any state changes, which subscribers may cache the
	// soon-to-change resources via strong references: the reverse closure
	// must be computed while the old statements and materializations are
	// still in place.
	holders := map[string]map[string]bool{}
	for _, group := range [][]*rdf.Resource{updatedOld, deleted} {
		for _, r := range group {
			h, err := e.strongHolders(r.URIRef)
			if err != nil {
				return nil, err
			}
			holders[r.URIRef] = h
		}
	}

	// Phase 1 (§3.5, first filter execution): run the filter over the OLD
	// versions of updated and deleted resources. The matches are the
	// candidate set — every (rule, resource) pair whose support involves
	// the old data — and their materializations are retracted.
	var before *matchSet
	if len(updatedOld)+len(deleted) > 0 {
		var oldAtoms []preparedAtom
		for _, r := range append(append([]*rdf.Resource{}, updatedOld...), deleted...) {
			oldAtoms = append(oldAtoms, atomsOf(atoms, r)...)
		}
		m, err := e.runFilter(oldAtoms, modeCollect)
		if err != nil {
			return nil, err
		}
		if err := e.unmaterializeAll(m); err != nil {
			return nil, err
		}
		before = m
	} else {
		before = newMatchSet()
	}

	// Phase 2 (§3.5: "the modified metadata is written into the database"):
	// apply the data changes.
	for _, r := range append(append([]*rdf.Resource{}, updatedOld...), deleted...) {
		if _, err := e.prep.delStatements.Exec(rdb.NewText(r.URIRef)); err != nil {
			return nil, err
		}
		if _, err := e.prep.delResource.Exec(rdb.NewText(r.URIRef)); err != nil {
			return nil, err
		}
	}
	for _, ch := range changes {
		if ch.isNew {
			if _, err := e.db.Exec(`INSERT INTO Documents (uri, content) VALUES (?, ?)`,
				rdb.NewText(ch.doc.URI), rdb.NewText(ch.content)); err != nil {
				return nil, err
			}
		} else {
			if _, err := e.db.Exec(`UPDATE Documents SET content = ? WHERE uri = ?`,
				rdb.NewText(ch.content), rdb.NewText(ch.doc.URI)); err != nil {
				return nil, err
			}
		}
	}
	for _, group := range [][]*rdf.Resource{added, updatedNew} {
		for _, r := range group {
			docURI, err := e.docURIOf(changes, r.URIRef)
			if err != nil {
				return nil, err
			}
			if _, err := e.prep.insResource.Exec(
				rdb.NewText(r.URIRef), rdb.NewText(docURI), rdb.NewText(r.Class)); err != nil {
				return nil, err
			}
			for _, pa := range atomsOf(atoms, r) {
				a := pa.stmt
				if _, err := e.prep.insStatement.Exec(
					rdb.NewText(a.URIRef), rdb.NewText(a.Class), rdb.NewText(a.Property),
					rdb.NewText(a.Value), pa.num, rdb.NewBool(a.IsRef)); err != nil {
					return nil, err
				}
			}
		}
	}

	// Phase 3 (§3.5, final filter execution; for new documents this is the
	// only effective one): run the filter over the new and modified data,
	// materializing the derived matches.
	var after *matchSet
	if len(added)+len(updatedNew) > 0 {
		var newAtoms []preparedAtom
		for _, r := range append(append([]*rdf.Resource{}, added...), updatedNew...) {
			newAtoms = append(newAtoms, atomsOf(atoms, r)...)
		}
		m, err := e.runFilter(newAtoms, modeMaterialize)
		if err != nil {
			return nil, err
		}
		after = m
	} else {
		after = newMatchSet()
	}

	// Phase 4: determine true candidates (§3.5, second execution). A
	// candidate (rule, resource) from phase 1 is a "wrong candidate" iff it
	// is materialized again — either re-derived in phase 3 or never really
	// retracted. RuleResults membership after phase 3 is exactly that test.
	tCS := time.Now()
	ps, err := e.buildPublishSet(before, after, updatedNew, deleted, holders)
	if err != nil {
		return nil, err
	}
	e.observeStage(stageChangeset, tCS)
	return ps, nil
}

// DeleteDocument removes a registered document and all its resources
// (§2.2: "removing the complete document with all its content").
func (e *Engine) DeleteDocument(uri string) (*PublishSet, error) {
	e.mu.Lock()
	stored, isNew, err := e.loadStoredDocument(uri)
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	if isNew || stored == nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("core: document %s is not registered", uri)
	}
	e.mu.Unlock()
	// Re-register an empty version: every resource becomes deleted.
	empty := rdf.NewDocument(uri)
	ps, err := e.RegisterDocuments([]*rdf.Document{empty})
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	_, err = e.db.Exec(`DELETE FROM Documents WHERE uri = ?`, rdb.NewText(uri))
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return ps, nil
}

// loadStoredDocument fetches and parses the stored version of a document.
// isNew reports that no version is registered yet.
func (e *Engine) loadStoredDocument(uri string) (doc *rdf.Document, isNew bool, err error) {
	rows, err := e.db.Query(`SELECT content FROM Documents WHERE uri = ?`, rdb.NewText(uri))
	if err != nil {
		return nil, false, err
	}
	if rows.Empty() {
		return nil, true, nil
	}
	doc, err = rdf.ParseDocumentString(uri, rows.Data[0][0].Str)
	if err != nil {
		return nil, false, fmt.Errorf("core: stored document %s is corrupt: %w", uri, err)
	}
	return doc, false, nil
}

// docChange is one document of a registration batch.
type docChange struct {
	doc     *rdf.Document
	content string
	isNew   bool
}

// docURIOf resolves which batch document owns a resource.
func (e *Engine) docURIOf(changes []docChange, uriRef string) (string, error) {
	for _, ch := range changes {
		if _, ok := ch.doc.Find(uriRef); ok {
			return ch.doc.URI, nil
		}
	}
	return "", fmt.Errorf("core: resource %s not found in batch", uriRef)
}

func singleResourceAtoms(r *rdf.Resource) []rdf.Statement {
	d := rdf.Document{Resources: []*rdf.Resource{r}}
	return d.Statements()
}

// preparedAtom is one decomposed statement (paper §3.2) together with its
// pre-parsed numeric shadow value (what the Statements and FilterData
// num_value columns store).
type preparedAtom struct {
	stmt rdf.Statement
	num  rdb.Value
}

// decomposeResource decomposes one resource into prepared atoms.
func decomposeResource(r *rdf.Resource) []preparedAtom {
	as := singleResourceAtoms(r)
	out := make([]preparedAtom, len(as))
	for i, a := range as {
		out[i] = preparedAtom{stmt: a, num: numValue(a.Value)}
	}
	return out
}

// atomsOf returns a resource's precomputed decomposition, computing it on
// the spot when the resource was not part of the prepared batch (the old
// version of an updated resource, loaded from the Documents table).
func atomsOf(m map[*rdf.Resource][]preparedAtom, r *rdf.Resource) []preparedAtom {
	if pa, ok := m[r]; ok {
		return pa
	}
	return decomposeResource(r)
}

// preparedDoc is the per-document output of prepareBatch: everything a
// registration needs that does not depend on engine state.
type preparedDoc struct {
	content string
	atoms   map[*rdf.Resource][]preparedAtom
	err     error
}

// prepareBatch fans the CPU-bound per-document work of a registration
// batch — schema validation, serialization for the Documents table, and
// atom decomposition with numeric parsing — across a runtime.NumCPU()
// worker pool. It touches no engine state, so it runs outside the lock.
func (e *Engine) prepareBatch(docs []*rdf.Document) []preparedDoc {
	out := make([]preparedDoc, len(docs))
	workers := runtime.NumCPU()
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers <= 1 {
		for i, doc := range docs {
			out[i] = e.prepareDoc(doc)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.prepareDoc(docs[i])
			}
		}()
	}
	for i := range docs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

func (e *Engine) prepareDoc(doc *rdf.Document) preparedDoc {
	pd := preparedDoc{}
	if err := e.schema.ValidateDocument(doc); err != nil {
		pd.err = err
		return pd
	}
	pd.content = rdf.DocumentString(doc)
	pd.atoms = make(map[*rdf.Resource][]preparedAtom, len(doc.Resources))
	for _, r := range doc.Resources {
		pd.atoms[r] = decomposeResource(r)
	}
	return pd
}

// GetResource reconstructs a resource from the Statements table.
func (e *Engine) GetResource(uriRef string) (*rdf.Resource, bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.getResourceLocked(uriRef)
}

// getResourceLocked is GetResource for callers already holding e.mu in
// either mode.
func (e *Engine) getResourceLocked(uriRef string) (*rdf.Resource, bool, error) {
	rows, err := e.prep.stmtsOfURI.Query(rdb.NewText(uriRef))
	if err != nil {
		return nil, false, err
	}
	if rows.Empty() {
		return nil, false, nil
	}
	res := &rdf.Resource{URIRef: uriRef}
	for _, row := range rows.Data {
		res.Class = row[1].Str
		prop, value, isRef := row[2].Str, row[3].Str, row[4].Bool
		if prop == rdf.SubjectProperty {
			continue
		}
		if isRef {
			res.Add(prop, rdf.Ref(value))
		} else {
			res.Add(prop, rdf.Lit(value))
		}
	}
	// The statement index orders rows by (uri, property), but values of a
	// set-valued property (equal keys) surface in physical row order, which
	// free-list reuse makes history-dependent: the same resource could render
	// its themes differently on a long-lived engine and a reloaded snapshot.
	// Sort equal-name runs so changesets are deterministic functions of
	// engine content.
	sort.SliceStable(res.Props, func(a, b int) bool {
		if res.Props[a].Name != res.Props[b].Name {
			return res.Props[a].Name < res.Props[b].Name
		}
		return res.Props[a].Value.String() < res.Props[b].Value.String()
	})
	return res, true, nil
}

// DocumentURIs lists all registered document URIs.
func (e *Engine) DocumentURIs() ([]string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rows, err := e.db.Query(`SELECT uri FROM Documents ORDER BY uri`)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, rows.Len())
	for _, r := range rows.Data {
		out = append(out, r[0].Str)
	}
	return out, nil
}

// StoredDocument returns the stored serialized form of a document.
func (e *Engine) StoredDocument(uri string) (*rdf.Document, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	doc, isNew, err := e.loadStoredDocument(uri)
	if err != nil {
		return nil, err
	}
	if isNew {
		return nil, fmt.Errorf("core: document %s is not registered", uri)
	}
	return doc, nil
}

// Browse lists resources of a class with a simple substring filter over
// their serialized properties — the MDP-side browsing facility real users
// use to select metadata for caching (paper §2.2, Figure 2).
//
// Contract (deliberately broader than a rule-level `contains`, which tests
// exactly one (class, property) value): a resource matches when the filter
// occurs byte-wise and case-sensitively — the same strings.Contains
// semantics as the SQL CONTAINS operator and the triggering text index — in
// its URI reference OR in any property value's lexical form (for reference
// properties, the target URI). An empty filter matches every resource of
// the class. Browse never consults the filter tables or the text index:
// it is a read-only catalog scan, not a subscription evaluation.
func (e *Engine) Browse(class, contains string) ([]*rdf.Resource, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rows, err := e.db.Query(`SELECT uri_reference FROM Resources WHERE class = ? ORDER BY uri_reference`,
		rdb.NewText(class))
	if err != nil {
		return nil, err
	}
	var out []*rdf.Resource
	for _, row := range rows.Data {
		res, ok, err := e.getResourceLocked(row[0].Str)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if contains != "" {
			match := strings.Contains(res.URIRef, contains)
			for _, p := range res.Props {
				if strings.Contains(p.Value.String(), contains) {
					match = true
					break
				}
			}
			if !match {
				continue
			}
		}
		out = append(out, res)
	}
	return out, nil
}
