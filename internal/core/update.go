package core

import (
	"fmt"
	"strings"

	"mdv/internal/rdb"
	"mdv/internal/rdf"
)

// RegisterDocument registers a single document. See RegisterDocuments.
func (e *Engine) RegisterDocument(doc *rdf.Document) (*PublishSet, error) {
	return e.RegisterDocuments([]*rdf.Document{doc})
}

// RegisterDocuments registers (or re-registers) a batch of RDF documents
// and runs the publish & subscribe filter over the batch. Re-registering a
// document with the same URI updates it: the engine diffs the versions
// (§3.5) and treats resources as added, updated, or deleted accordingly.
//
// The returned PublishSet contains the per-subscriber changesets: upserts
// for resources that newly or still match subscribed rules (with their
// strong-reference closures), removals for resources that no longer match
// a subscription, and forced deletes for resources removed at the source.
func (e *Engine) RegisterDocuments(docs []*rdf.Document) (*PublishSet, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	var added, updatedNew, updatedOld, deleted []*rdf.Resource
	var changes []docChange

	seen := map[string]bool{}
	for _, doc := range docs {
		if seen[doc.URI] {
			return nil, fmt.Errorf("core: duplicate document %s in batch", doc.URI)
		}
		seen[doc.URI] = true
		if err := e.schema.ValidateDocument(doc); err != nil {
			return nil, err
		}
		old, isNew, err := e.loadStoredDocument(doc.URI)
		if err != nil {
			return nil, err
		}
		diff := rdf.DiffDocuments(old, doc)
		added = append(added, diff.Added...)
		updatedNew = append(updatedNew, diff.Updated...)
		updatedOld = append(updatedOld, diff.OldUpdated...)
		deleted = append(deleted, diff.Deleted...)
		changes = append(changes, docChange{doc: doc, content: rdf.DocumentString(doc), isNew: isNew})
	}

	// Reject cross-document URI collisions for added resources.
	for _, r := range added {
		rows, err := e.prep.resourceClass.Query(rdb.NewText(r.URIRef))
		if err != nil {
			return nil, err
		}
		if !rows.Empty() {
			return nil, fmt.Errorf("core: resource %s is already registered by document %s",
				r.URIRef, rows.Data[0][1].Str)
		}
	}

	e.stats.DocumentsRegistered += len(docs)
	e.stats.ResourcesRegistered += len(added) + len(updatedNew)

	// Capture, before any state changes, which subscribers may cache the
	// soon-to-change resources via strong references: the reverse closure
	// must be computed while the old statements and materializations are
	// still in place.
	holders := map[string]map[string]bool{}
	for _, group := range [][]*rdf.Resource{updatedOld, deleted} {
		for _, r := range group {
			h, err := e.strongHolders(r.URIRef)
			if err != nil {
				return nil, err
			}
			holders[r.URIRef] = h
		}
	}

	// Phase 1 (§3.5, first filter execution): run the filter over the OLD
	// versions of updated and deleted resources. The matches are the
	// candidate set — every (rule, resource) pair whose support involves
	// the old data — and their materializations are retracted.
	var before *matchSet
	if len(updatedOld)+len(deleted) > 0 {
		oldAtoms := resourceAtoms(append(append([]*rdf.Resource{}, updatedOld...), deleted...))
		m, err := e.runFilter(oldAtoms, modeCollect)
		if err != nil {
			return nil, err
		}
		if err := e.unmaterializeAll(m); err != nil {
			return nil, err
		}
		before = m
	} else {
		before = newMatchSet()
	}

	// Phase 2 (§3.5: "the modified metadata is written into the database"):
	// apply the data changes.
	for _, r := range append(append([]*rdf.Resource{}, updatedOld...), deleted...) {
		if _, err := e.prep.delStatements.Exec(rdb.NewText(r.URIRef)); err != nil {
			return nil, err
		}
		if _, err := e.prep.delResource.Exec(rdb.NewText(r.URIRef)); err != nil {
			return nil, err
		}
	}
	for _, ch := range changes {
		if ch.isNew {
			if _, err := e.db.Exec(`INSERT INTO Documents (uri, content) VALUES (?, ?)`,
				rdb.NewText(ch.doc.URI), rdb.NewText(ch.content)); err != nil {
				return nil, err
			}
		} else {
			if _, err := e.db.Exec(`UPDATE Documents SET content = ? WHERE uri = ?`,
				rdb.NewText(ch.content), rdb.NewText(ch.doc.URI)); err != nil {
				return nil, err
			}
		}
	}
	for _, group := range [][]*rdf.Resource{added, updatedNew} {
		for _, r := range group {
			docURI, err := e.docURIOf(changes, r.URIRef)
			if err != nil {
				return nil, err
			}
			if _, err := e.prep.insResource.Exec(
				rdb.NewText(r.URIRef), rdb.NewText(docURI), rdb.NewText(r.Class)); err != nil {
				return nil, err
			}
			for _, a := range singleResourceAtoms(r) {
				if _, err := e.prep.insStatement.Exec(
					rdb.NewText(a.URIRef), rdb.NewText(a.Class), rdb.NewText(a.Property),
					rdb.NewText(a.Value), numValue(a.Value), rdb.NewBool(a.IsRef)); err != nil {
					return nil, err
				}
			}
		}
	}

	// Phase 3 (§3.5, final filter execution; for new documents this is the
	// only effective one): run the filter over the new and modified data,
	// materializing the derived matches.
	var after *matchSet
	if len(added)+len(updatedNew) > 0 {
		newAtoms := resourceAtoms(append(append([]*rdf.Resource{}, added...), updatedNew...))
		m, err := e.runFilter(newAtoms, modeMaterialize)
		if err != nil {
			return nil, err
		}
		after = m
	} else {
		after = newMatchSet()
	}

	// Phase 4: determine true candidates (§3.5, second execution). A
	// candidate (rule, resource) from phase 1 is a "wrong candidate" iff it
	// is materialized again — either re-derived in phase 3 or never really
	// retracted. RuleResults membership after phase 3 is exactly that test.
	return e.buildPublishSet(before, after, updatedNew, deleted, holders)
}

// DeleteDocument removes a registered document and all its resources
// (§2.2: "removing the complete document with all its content").
func (e *Engine) DeleteDocument(uri string) (*PublishSet, error) {
	e.mu.Lock()
	stored, isNew, err := e.loadStoredDocument(uri)
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	if isNew || stored == nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("core: document %s is not registered", uri)
	}
	e.mu.Unlock()
	// Re-register an empty version: every resource becomes deleted.
	empty := rdf.NewDocument(uri)
	ps, err := e.RegisterDocuments([]*rdf.Document{empty})
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	_, err = e.db.Exec(`DELETE FROM Documents WHERE uri = ?`, rdb.NewText(uri))
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return ps, nil
}

// loadStoredDocument fetches and parses the stored version of a document.
// isNew reports that no version is registered yet.
func (e *Engine) loadStoredDocument(uri string) (doc *rdf.Document, isNew bool, err error) {
	rows, err := e.db.Query(`SELECT content FROM Documents WHERE uri = ?`, rdb.NewText(uri))
	if err != nil {
		return nil, false, err
	}
	if rows.Empty() {
		return nil, true, nil
	}
	doc, err = rdf.ParseDocumentString(uri, rows.Data[0][0].Str)
	if err != nil {
		return nil, false, fmt.Errorf("core: stored document %s is corrupt: %w", uri, err)
	}
	return doc, false, nil
}

// docChange is one document of a registration batch.
type docChange struct {
	doc     *rdf.Document
	content string
	isNew   bool
}

// docURIOf resolves which batch document owns a resource.
func (e *Engine) docURIOf(changes []docChange, uriRef string) (string, error) {
	for _, ch := range changes {
		if _, ok := ch.doc.Find(uriRef); ok {
			return ch.doc.URI, nil
		}
	}
	return "", fmt.Errorf("core: resource %s not found in batch", uriRef)
}

// resourceAtoms decomposes resources into statements (paper §3.2).
func resourceAtoms(rs []*rdf.Resource) []rdf.Statement {
	var out []rdf.Statement
	for _, r := range rs {
		out = append(out, singleResourceAtoms(r)...)
	}
	return out
}

func singleResourceAtoms(r *rdf.Resource) []rdf.Statement {
	d := rdf.Document{Resources: []*rdf.Resource{r}}
	return d.Statements()
}

// GetResource reconstructs a resource from the Statements table.
func (e *Engine) GetResource(uriRef string) (*rdf.Resource, bool, error) {
	rows, err := e.prep.stmtsOfURI.Query(rdb.NewText(uriRef))
	if err != nil {
		return nil, false, err
	}
	if rows.Empty() {
		return nil, false, nil
	}
	res := &rdf.Resource{URIRef: uriRef}
	for _, row := range rows.Data {
		res.Class = row[1].Str
		prop, value, isRef := row[2].Str, row[3].Str, row[4].Bool
		if prop == rdf.SubjectProperty {
			continue
		}
		if isRef {
			res.Add(prop, rdf.Ref(value))
		} else {
			res.Add(prop, rdf.Lit(value))
		}
	}
	return res, true, nil
}

// DocumentURIs lists all registered document URIs.
func (e *Engine) DocumentURIs() ([]string, error) {
	rows, err := e.db.Query(`SELECT uri FROM Documents ORDER BY uri`)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, rows.Len())
	for _, r := range rows.Data {
		out = append(out, r[0].Str)
	}
	return out, nil
}

// StoredDocument returns the stored serialized form of a document.
func (e *Engine) StoredDocument(uri string) (*rdf.Document, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	doc, isNew, err := e.loadStoredDocument(uri)
	if err != nil {
		return nil, err
	}
	if isNew {
		return nil, fmt.Errorf("core: document %s is not registered", uri)
	}
	return doc, nil
}

// Browse lists resources of a class with a simple substring filter over
// their serialized properties — the MDP-side browsing facility real users
// use to select metadata for caching (paper §2.2, Figure 2).
func (e *Engine) Browse(class, contains string) ([]*rdf.Resource, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rows, err := e.db.Query(`SELECT uri_reference FROM Resources WHERE class = ? ORDER BY uri_reference`,
		rdb.NewText(class))
	if err != nil {
		return nil, err
	}
	var out []*rdf.Resource
	for _, row := range rows.Data {
		res, ok, err := e.GetResource(row[0].Str)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if contains != "" {
			match := strings.Contains(res.URIRef, contains)
			for _, p := range res.Props {
				if strings.Contains(p.Value.String(), contains) {
					match = true
					break
				}
			}
			if !match {
				continue
			}
		}
		out = append(out, res)
	}
	return out, nil
}
