package core

import (
	"fmt"
	"testing"

	"mdv/internal/rdf"
)

// TestNoOpReRegistration: re-registering an identical document is silent —
// no filter matches, no notifications.
func TestNoOpReRegistration(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Subscribe("lmr1", example331); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterDocument(figure1Doc()); err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	ps, err := e.RegisterDocument(figure1Doc())
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Subscribers()) != 0 {
		t.Errorf("no-op re-registration notified: %v", ps.Subscribers())
	}
	after := e.Stats()
	if after.TriggeringMatches != before.TriggeringMatches {
		t.Errorf("no-op re-registration ran triggering matches: %d -> %d",
			before.TriggeringMatches, after.TriggeringMatches)
	}
}

// TestMixedBatch: one batch containing a new document, an update, and a
// document that loses a resource — all three effects publish correctly.
func TestMixedBatch(t *testing.T) {
	e := newTestEngine(t)
	sub, _, err := e.Subscribe("lmr1",
		`search CycleProvider c register c where c.serverInformation.memory > 64`)
	if err != nil {
		t.Fatal(err)
	}
	_ = sub

	mkdoc := func(n int, memory string) *rdf.Document {
		doc := rdf.NewDocument(fmt.Sprintf("m%d.rdf", n))
		cp := doc.NewResource("cp", "CycleProvider")
		cp.Add("serverInformation", rdf.Ref(doc.QualifyID("si")))
		si := doc.NewResource("si", "ServerInformation")
		si.Add("memory", rdf.Lit(memory))
		return doc
	}
	// Seed: doc1 matches, doc2 matches.
	if _, err := e.RegisterDocuments([]*rdf.Document{mkdoc(1, "128"), mkdoc(2, "256")}); err != nil {
		t.Fatal(err)
	}

	// Mixed batch: doc3 new (matches), doc1 updated below the threshold
	// (stops matching), doc2 re-registered without its resources (deletes).
	empty2 := rdf.NewDocument("m2.rdf")
	ps, err := e.RegisterDocuments([]*rdf.Document{mkdoc(3, "512"), mkdoc(1, "16"), empty2})
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil {
		t.Fatal("no changeset")
	}
	if len(cs.Upserts) != 1 || cs.Upserts[0].Resource.URIRef != "m3.rdf#cp" {
		t.Errorf("upserts = %v", upsertURIs(cs))
	}
	var removed []string
	for _, r := range cs.Removals {
		removed = append(removed, r.URIRef)
	}
	// doc1's cp stops matching (update); doc2's cp is deleted (also a
	// removal candidate, plus forced deletes for both its resources).
	wantRemovals := map[string]bool{"m1.rdf#cp": true, "m2.rdf#cp": true}
	for _, uri := range removed {
		delete(wantRemovals, uri)
	}
	if len(wantRemovals) != 0 {
		t.Errorf("missing removals: %v (got %v)", wantRemovals, removed)
	}
	wantDeletes := map[string]bool{"m2.rdf#cp": true, "m2.rdf#si": true}
	for _, uri := range cs.ForcedDeletes {
		delete(wantDeletes, uri)
	}
	if len(wantDeletes) != 0 {
		t.Errorf("missing forced deletes: %v (got %v)", wantDeletes, cs.ForcedDeletes)
	}

	// End state is consistent.
	if e.ResourceCount() != 4 { // m1 (2 resources) + m3 (2 resources)
		t.Errorf("resources = %d", e.ResourceCount())
	}
}

// TestClassChangeOnUpdate: a resource whose class changes is handled as a
// content update — old-class rules lose it, new-class rules gain it.
func TestClassChangeOnUpdate(t *testing.T) {
	e := newTestEngine(t)
	cpSub, _, err := e.Subscribe("lmr1", `search CycleProvider c register c`)
	if err != nil {
		t.Fatal(err)
	}
	dpSub, _, err := e.Subscribe("lmr1", `search DataProvider d register d`)
	if err != nil {
		t.Fatal(err)
	}
	doc := rdf.NewDocument("cc.rdf")
	doc.NewResource("x", "CycleProvider")
	if _, err := e.RegisterDocument(doc); err != nil {
		t.Fatal(err)
	}
	// Same URI reference, different class.
	doc2 := rdf.NewDocument("cc.rdf")
	doc2.NewResource("x", "DataProvider")
	ps, err := e.RegisterDocument(doc2)
	if err != nil {
		t.Fatal(err)
	}
	cs := ps.Changesets["lmr1"]
	if cs == nil {
		t.Fatal("no changeset")
	}
	var gotRemoval, gotUpsert bool
	for _, r := range cs.Removals {
		if r.URIRef == "cc.rdf#x" && r.SubID == cpSub {
			gotRemoval = true
		}
	}
	for _, up := range cs.Upserts {
		if up.Resource.URIRef == "cc.rdf#x" {
			for _, id := range up.SubIDs {
				if id == dpSub {
					gotUpsert = true
				}
			}
		}
	}
	if !gotRemoval {
		t.Error("old-class subscription kept the resource")
	}
	if !gotUpsert {
		t.Error("new-class subscription missed the resource")
	}
}

// TestEmptyBatch: registering an empty batch is a no-op, not an error.
func TestEmptyBatch(t *testing.T) {
	e := newTestEngine(t)
	ps, err := e.RegisterDocuments(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Subscribers()) != 0 {
		t.Error("empty batch notified")
	}
}

// TestSubscribeRejectsInvalidRuleCleanly: a rule failing mid-decomposition
// leaves no partial state behind.
func TestSubscribeRejectsInvalidRuleCleanly(t *testing.T) {
	e := newTestEngine(t)
	base := e.AtomicRuleCount()
	for _, bad := range []string{
		`garbage`,
		`search Unknown u register u`,
		`search CycleProvider c register c where c.nope = 1`,
	} {
		if _, _, err := e.Subscribe("lmr1", bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	if got := e.AtomicRuleCount(); got != base {
		t.Errorf("failed subscriptions leaked %d atomic rules", got-base)
	}
	subs, _ := e.Subscriptions()
	if len(subs) != 0 {
		t.Errorf("failed subscriptions persisted: %v", subs)
	}
	// A valid rule still works afterwards.
	if _, _, err := e.Subscribe("lmr1", example331); err != nil {
		t.Errorf("engine unusable after failures: %v", err)
	}
}
