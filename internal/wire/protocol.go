package wire

import (
	"mdv/internal/core"
	"mdv/internal/rdf"
)

// Request/response payload types of the MDV protocol. Both tiers' servers
// and the typed clients share these definitions.

// Doc is a serialized RDF document in transit.
type Doc struct {
	URI string `json:"uri"`
	XML string `json:"xml"`
}

// Message kinds served by an MDP (metadata provider).
const (
	KindRegisterDocuments = "register_documents"
	KindDeleteDocument    = "delete_document"
	KindSubscribe         = "subscribe"
	KindUnsubscribe       = "unsubscribe"
	KindBrowse            = "browse"
	KindGetDocument       = "get_document"
	KindAttach            = "attach"
	KindReplicate         = "replicate"
	KindReplicateDelete   = "replicate_delete"
	KindNamedRule         = "named_rule"
	KindStats             = "stats"
	// KindDeliveryStats reports per-subscriber delivery health (queue
	// depth, drops, disconnects, heartbeat RTT, publish lag).
	KindDeliveryStats = "delivery_stats"
	// KindMetrics returns the node's metrics registry rendered in the
	// Prometheus text exposition format (both tiers serve it; empty text
	// when metrics are not enabled).
	KindMetrics = "metrics"
	// KindChangeset is the push an MDP sends to attached subscribers.
	KindChangeset = "changeset"
	// KindResume asks a durable MDP to replay the changesets published
	// since the subscriber's acknowledged sequence number.
	KindResume = "resume"
	// KindAck acknowledges application of a pushed changeset, advancing
	// the MDP's truncation watermark for this subscriber.
	KindAck = "ack"
)

// Message kinds served by an LMR (local metadata repository).
const (
	KindQuery              = "query"
	KindAddSubscription    = "add_subscription"
	KindRemoveSubscription = "remove_subscription"
	KindRegisterLocal      = "register_local"
	KindListResources      = "list_resources"
	KindLMRStats           = "lmr_stats"
)

// RegisterDocumentsRequest registers or re-registers documents at an MDP.
type RegisterDocumentsRequest struct {
	Docs []Doc `json:"docs"`
	// Replicated marks backbone-internal forwarding; such registrations are
	// not forwarded again (the backbone is a full mesh).
	Replicated bool `json:"replicated,omitempty"`
}

// DeleteDocumentRequest deletes a document at an MDP.
type DeleteDocumentRequest struct {
	URI        string `json:"uri"`
	Replicated bool   `json:"replicated,omitempty"`
}

// SubscribeRequest registers a subscription rule.
type SubscribeRequest struct {
	Subscriber string `json:"subscriber"`
	Rule       string `json:"rule"`
}

// SubscribeResponse returns the subscription id and the initial cache fill.
type SubscribeResponse struct {
	SubID   int64           `json:"sub_id"`
	Initial *core.Changeset `json:"initial"`
}

// UnsubscribeRequest removes a subscription.
type UnsubscribeRequest struct {
	SubID int64 `json:"sub_id"`
}

// BrowseRequest lists resources at an MDP (§2.2's user browsing).
type BrowseRequest struct {
	Class    string `json:"class"`
	Contains string `json:"contains,omitempty"`
}

// ResourcesResponse carries resources.
type ResourcesResponse struct {
	Resources []*rdf.Resource `json:"resources"`
}

// GetDocumentRequest fetches a registered document.
type GetDocumentRequest struct {
	URI string `json:"uri"`
}

// AttachRequest registers the connection as a subscriber's push channel.
type AttachRequest struct {
	Subscriber string `json:"subscriber"`
}

// ChangesetPush is the body of a KindChangeset push. Seq is the publish
// record's changelog sequence number (0 when the MDP runs without a
// changelog); the subscriber acknowledges it and resumes from it after a
// reconnect. Reset marks a full-state changeset: the subscriber must drop
// its cached global metadata and rebuild from this changeset (sent when
// the MDP can no longer prove a gap-free replay, e.g. after truncation).
type ChangesetPush struct {
	Seq       uint64          `json:"seq,omitempty"`
	Reset     bool            `json:"reset,omitempty"`
	Changeset *core.Changeset `json:"changeset"`
	// PubUnixNano is the provider's wall clock at publish time, stamped on
	// live pushes only (resume replays leave it 0: their propagation delay
	// reflects how long the subscriber was away, not pipeline health). The
	// receiver subtracts it from its own clock for the end-to-end
	// propagation-lag histogram; skew between the two clocks is the
	// measurement's error bar.
	PubUnixNano int64 `json:"pub_unix_nano,omitempty"`
}

// ResumeRequest asks for a replay of publishes missed since FromSeq.
type ResumeRequest struct {
	Subscriber string `json:"subscriber"`
	FromSeq    uint64 `json:"from_seq"`
}

// ResumeResponse reports the sequence the subscriber is now current to.
// The replayed changesets themselves arrive as ordered KindChangeset
// pushes on the attached connection, before this response.
type ResumeResponse struct {
	LatestSeq uint64 `json:"latest_seq"`
}

// AckRequest acknowledges the application of pushes up to Seq.
type AckRequest struct {
	Subscriber string `json:"subscriber"`
	Seq        uint64 `json:"seq"`
}

// SubscriberDelivery is one subscriber's delivery health at an MDP.
type SubscriberDelivery struct {
	Subscriber string `json:"subscriber"`
	// Conns is the number of live push connections.
	Conns int `json:"conns"`
	// QueueDepth/QueueCap aggregate the outbound queues of the live
	// connections.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Enqueued counts changesets queued for delivery; Dropped counts
	// overflow disconnects (each drops exactly the changeset that
	// overflowed; the subscriber recovers it by resuming); Disconnects
	// counts push-channel losses of any cause.
	Enqueued    uint64 `json:"enqueued"`
	Dropped     uint64 `json:"dropped"`
	Disconnects uint64 `json:"disconnects"`
	// PublishedSeq is the last changelog sequence published to this
	// subscriber; AckedSeq the last it acknowledged; Lag the difference
	// (0 on non-durable providers).
	PublishedSeq uint64 `json:"published_seq"`
	AckedSeq     uint64 `json:"acked_seq"`
	Lag          uint64 `json:"lag"`
	// RTTMicros is the last heartbeat round trip measured on a push
	// connection (0 = not yet measured / heartbeats off); IdleMillis the
	// inbound silence on the least idle connection.
	RTTMicros  int64 `json:"rtt_micros"`
	IdleMillis int64 `json:"idle_millis"`
}

// DeliveryStatsResponse is the body of a KindDeliveryStats response.
type DeliveryStatsResponse struct {
	Subscribers []SubscriberDelivery `json:"subscribers"`
	// LogSeq is the provider's changelog tail (0 if not durable).
	LogSeq uint64 `json:"log_seq"`
}

// MetricsResponse is the body of a KindMetrics response: the node's
// metrics registry in Prometheus text exposition format.
type MetricsResponse struct {
	Text string `json:"text"`
}

// NamedRuleRequest registers a named rule usable as an extension.
type NamedRuleRequest struct {
	Name string `json:"name"`
	Rule string `json:"rule"`
}

// QueryRequest evaluates an MDV query at an LMR.
type QueryRequest struct {
	Query string `json:"query"`
}

// AddSubscriptionRequest asks an LMR to subscribe to its MDP.
type AddSubscriptionRequest struct {
	Rule string `json:"rule"`
}

// ListResourcesRequest lists cached resources at an LMR.
type ListResourcesRequest struct {
	Class string `json:"class"`
}
