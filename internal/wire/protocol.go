package wire

import (
	"mdv/internal/core"
	"mdv/internal/rdf"
)

// Request/response payload types of the MDV protocol. Both tiers' servers
// and the typed clients share these definitions.

// Doc is a serialized RDF document in transit.
type Doc struct {
	URI string `json:"uri"`
	XML string `json:"xml"`
}

// Message kinds served by an MDP (metadata provider).
const (
	KindRegisterDocuments = "register_documents"
	KindDeleteDocument    = "delete_document"
	KindSubscribe         = "subscribe"
	KindUnsubscribe       = "unsubscribe"
	KindBrowse            = "browse"
	KindGetDocument       = "get_document"
	KindAttach            = "attach"
	KindReplicate         = "replicate"
	KindReplicateDelete   = "replicate_delete"
	KindNamedRule         = "named_rule"
	KindStats             = "stats"
	// KindDeliveryStats reports per-subscriber delivery health (queue
	// depth, drops, disconnects, heartbeat RTT, publish lag).
	KindDeliveryStats = "delivery_stats"
	// KindMetrics returns the node's metrics registry rendered in the
	// Prometheus text exposition format (both tiers serve it; empty text
	// when metrics are not enabled).
	KindMetrics = "metrics"
	// KindChangeset is the push an MDP sends to attached subscribers.
	KindChangeset = "changeset"
	// KindChangesetBatch is a push carrying several coalesced changesets
	// in publish order (resume replays for lagging cursors amortize frame
	// and queue overhead this way).
	KindChangesetBatch = "changeset_batch"
	// KindResume asks a durable MDP to replay the changesets published
	// since the subscriber's acknowledged sequence number.
	KindResume = "resume"
	// KindAck acknowledges application of a pushed changeset, advancing
	// the MDP's truncation watermark for this subscriber.
	KindAck = "ack"
)

// Message kinds of the primary→replica changelog-shipping protocol. A
// follower MDP first asks for a snapshot if its tail lies below the
// primary's retained log (KindReplSnapshot), then subscribes its
// connection to the live record stream (KindReplStream); the primary
// pushes each durable changelog record verbatim (KindReplRecord) and the
// follower acknowledges applied prefixes (KindReplAck), which pins the
// primary's log truncation.
const (
	KindReplSnapshot      = "repl_snapshot"
	KindReplSnapshotChunk = "repl_snapshot_chunk"
	KindReplStream        = "repl_stream"
	KindReplRecord        = "replog"
	KindReplAck           = "repl_ack"
)

// Failover control kinds. KindPromote turns a follower MDP into the
// primary of a new, higher epoch; KindTopology reports a node's view of
// the cluster (role, epoch, primary, follower lag); KindEpochAnnounce
// informs a node of a higher epoch elsewhere, so a resurrected stale
// primary fences itself and re-points at the real primary.
const (
	KindPromote       = "promote"
	KindTopology      = "topology"
	KindEpochAnnounce = "epoch_announce"
)

// ReplSnapshotRequest asks the primary for a bootstrap snapshot if the
// follower's changelog tail (FromSeq) lies below the primary's retained
// log. When a snapshot is needed its bytes arrive as ordered
// KindReplSnapshotChunk pushes on this connection, before the response.
// Epoch is the follower's current epoch: a primary receiving a request
// from a HIGHER epoch knows it is stale and self-demotes instead of
// serving. Force demands a snapshot even when the follower's tail looks
// current — the divergent-tail repair a demoted ex-primary runs, since
// its tail past the last replicated prefix can disagree with history.
type ReplSnapshotRequest struct {
	FromSeq uint64 `json:"from_seq"`
	Epoch   uint64 `json:"epoch,omitempty"`
	Force   bool   `json:"force,omitempty"`
}

// ReplSnapshotChunk is one piece of a streamed engine snapshot. Engine
// snapshots can exceed the wire message limit, so they ship chunked.
type ReplSnapshotChunk struct {
	Data []byte `json:"data"`
	Last bool   `json:"last"`
}

// ReplSnapshotResponse reports whether a snapshot was shipped and the
// sequence number it covers up to.
type ReplSnapshotResponse struct {
	Needed      bool   `json:"needed"`
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Epoch is the primary's current epoch at negotiation time.
	Epoch uint64 `json:"epoch,omitempty"`
}

// ReplStreamRequest subscribes the connection to the primary's changelog
// records with sequence > FromSeq. The primary rejects it with a
// descriptive error if records past FromSeq have been truncated (the
// follower must re-bootstrap via KindReplSnapshot).
type ReplStreamRequest struct {
	Follower string `json:"follower"`
	FromSeq  uint64 `json:"from_seq"`
	// Epoch fences the stream: a primary whose epoch is LOWER than the
	// follower's refuses (and self-demotes — the request is proof of a
	// newer term); a follower never streams history it has outgrown.
	Epoch uint64 `json:"epoch,omitempty"`
}

// ReplStreamResponse reports the primary's changelog tail and epoch at
// stream start. The follower stamps proxied writes with this epoch until
// the stream teaches it a newer one.
type ReplStreamResponse struct {
	LatestSeq uint64 `json:"latest_seq"`
	Epoch     uint64 `json:"epoch,omitempty"`
}

// ReplRecordPush carries one changelog record, verbatim, to a follower.
// SentUnixNano is the primary's clock at send time; the follower subtracts
// it from its own clock for the replication-lag-seconds gauge (clock skew
// is the measurement's error bar).
type ReplRecordPush struct {
	Seq          uint64 `json:"seq"`
	Rec          []byte `json:"rec"`
	SentUnixNano int64  `json:"sent_unix_nano,omitempty"`
	// Epoch is the sender's epoch at send time; a follower that has seen a
	// higher epoch rejects the record (a stale primary's stream must not
	// extend the log past the point history diverged).
	Epoch uint64 `json:"epoch,omitempty"`
}

// ReplAckRequest reports the follower's durable applied prefix. The
// primary keeps per-follower acks for lag metrics and holds log truncation
// below the minimum of connected followers' acks.
type ReplAckRequest struct {
	Follower string `json:"follower"`
	Seq      uint64 `json:"seq"`
	Epoch    uint64 `json:"epoch,omitempty"`
}

// PromoteResponse reports the epoch the promoted node now leads. Promote
// is idempotent: promoting a node that is already primary returns its
// current epoch unchanged.
type PromoteResponse struct {
	Epoch uint64 `json:"epoch"`
}

// TopologyResponse is one node's view of the replication cluster: its own
// role and epoch, the primary's address as it knows it (its own advertised
// address when it IS the primary), its changelog tail, and — on a primary
// — per-follower replication lag.
type TopologyResponse struct {
	Name    string `json:"name"`
	Role    string `json:"role"`
	Epoch   uint64 `json:"epoch"`
	Primary string `json:"primary,omitempty"`
	LogSeq  uint64 `json:"log_seq"`
	// ProxyUp reports, on a replica, whether the write-forwarding path to
	// the primary is currently established.
	ProxyUp   bool               `json:"proxy_up,omitempty"`
	Followers []FollowerDelivery `json:"followers,omitempty"`
}

// EpochAnnounceRequest carries proof of a newer epoch to a (presumed
// stale) node, with the new primary's address so it can re-point. The
// response returns the receiver's resulting epoch.
type EpochAnnounceRequest struct {
	Epoch   uint64 `json:"epoch"`
	Primary string `json:"primary,omitempty"`
}

// EpochAnnounceResponse returns the receiver's epoch after processing the
// announcement (it may exceed the announced epoch if the receiver knew of
// an even newer term).
type EpochAnnounceResponse struct {
	Epoch uint64 `json:"epoch"`
}

// Message kinds served by an LMR (local metadata repository).
const (
	KindQuery              = "query"
	KindAddSubscription    = "add_subscription"
	KindRemoveSubscription = "remove_subscription"
	KindRegisterLocal      = "register_local"
	KindListResources      = "list_resources"
	KindLMRStats           = "lmr_stats"
)

// RegisterDocumentsRequest registers or re-registers documents at an MDP.
// Epoch, when non-zero, fences the write: an MDP whose epoch differs
// rejects it rather than applying a write issued against a superseded (or
// not-yet-learned) view of the cluster. Zero means unfenced (a direct
// client that does not track epochs). The same field and semantics apply
// to every write request below.
type RegisterDocumentsRequest struct {
	Docs []Doc `json:"docs"`
	// Replicated marks backbone-internal forwarding; such registrations are
	// not forwarded again (the backbone is a full mesh).
	Replicated bool   `json:"replicated,omitempty"`
	Epoch      uint64 `json:"epoch,omitempty"`
}

// DeleteDocumentRequest deletes a document at an MDP.
type DeleteDocumentRequest struct {
	URI        string `json:"uri"`
	Replicated bool   `json:"replicated,omitempty"`
	Epoch      uint64 `json:"epoch,omitempty"`
}

// SubscribeRequest registers a subscription rule.
type SubscribeRequest struct {
	Subscriber string `json:"subscriber"`
	Rule       string `json:"rule"`
	Epoch      uint64 `json:"epoch,omitempty"`
}

// SubscribeResponse returns the subscription id and the initial cache fill.
type SubscribeResponse struct {
	SubID   int64           `json:"sub_id"`
	Initial *core.Changeset `json:"initial"`
}

// UnsubscribeRequest removes a subscription.
type UnsubscribeRequest struct {
	SubID int64  `json:"sub_id"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// BrowseRequest lists resources at an MDP (§2.2's user browsing).
type BrowseRequest struct {
	Class    string `json:"class"`
	Contains string `json:"contains,omitempty"`
}

// ResourcesResponse carries resources.
type ResourcesResponse struct {
	Resources []*rdf.Resource `json:"resources"`
}

// GetDocumentRequest fetches a registered document.
type GetDocumentRequest struct {
	URI string `json:"uri"`
}

// AttachRequest registers the connection as a subscriber's push channel.
type AttachRequest struct {
	Subscriber string `json:"subscriber"`
}

// ChangesetPush is the body of a KindChangeset push. Seq is the publish
// record's changelog sequence number (0 when the MDP runs without a
// changelog); the subscriber acknowledges it and resumes from it after a
// reconnect. Reset marks a full-state changeset: the subscriber must drop
// its cached global metadata and rebuild from this changeset (sent when
// the MDP can no longer prove a gap-free replay, e.g. after truncation).
type ChangesetPush struct {
	Seq       uint64          `json:"seq,omitempty"`
	Reset     bool            `json:"reset,omitempty"`
	Changeset *core.Changeset `json:"changeset"`
	// PubUnixNano is the provider's wall clock at publish time, stamped on
	// live pushes only (resume replays leave it 0: their propagation delay
	// reflects how long the subscriber was away, not pipeline health). The
	// receiver subtracts it from its own clock for the end-to-end
	// propagation-lag histogram; skew between the two clocks is the
	// measurement's error bar.
	PubUnixNano int64 `json:"pub_unix_nano,omitempty"`
}

// ChangesetBatchPush is the body of a KindChangesetBatch push: consecutive
// changesets coalesced into one frame, ordered by ascending Seq. The
// receiver applies them exactly as if each had arrived as its own
// KindChangeset push.
type ChangesetBatchPush struct {
	Pushes []ChangesetPush `json:"pushes"`
}

// ResumeRequest asks for a replay of publishes missed since FromSeq.
type ResumeRequest struct {
	Subscriber string `json:"subscriber"`
	FromSeq    uint64 `json:"from_seq"`
}

// ResumeResponse reports the sequence the subscriber is now current to.
// The replayed changesets themselves arrive as ordered KindChangeset
// pushes on the attached connection, before this response.
type ResumeResponse struct {
	LatestSeq uint64 `json:"latest_seq"`
}

// AckRequest acknowledges the application of pushes up to Seq.
type AckRequest struct {
	Subscriber string `json:"subscriber"`
	Seq        uint64 `json:"seq"`
}

// SubscriberDelivery is one subscriber's delivery health at an MDP.
type SubscriberDelivery struct {
	Subscriber string `json:"subscriber"`
	// Conns is the number of live push connections.
	Conns int `json:"conns"`
	// QueueDepth/QueueCap aggregate the outbound queues of the live
	// connections.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Enqueued counts changesets queued for delivery; Dropped counts
	// overflow disconnects (each drops exactly the changeset that
	// overflowed; the subscriber recovers it by resuming); Disconnects
	// counts push-channel losses of any cause.
	Enqueued    uint64 `json:"enqueued"`
	Dropped     uint64 `json:"dropped"`
	Disconnects uint64 `json:"disconnects"`
	// PublishedSeq is the last changelog sequence published to this
	// subscriber; AckedSeq the last it acknowledged; Lag the difference
	// (0 on non-durable providers).
	PublishedSeq uint64 `json:"published_seq"`
	AckedSeq     uint64 `json:"acked_seq"`
	Lag          uint64 `json:"lag"`
	// RTTMicros is the last heartbeat round trip measured on a push
	// connection (0 = not yet measured / heartbeats off); IdleMillis the
	// inbound silence on the least idle connection.
	RTTMicros  int64 `json:"rtt_micros"`
	IdleMillis int64 `json:"idle_millis"`
}

// FollowerDelivery is one follower MDP's replication health at a primary.
type FollowerDelivery struct {
	Follower string `json:"follower"`
	// StreamedSeq is the last changelog record sent to the follower;
	// AckedSeq the last it acknowledged as durably applied; LagSeqs the
	// distance from the primary's tail to AckedSeq.
	StreamedSeq uint64 `json:"streamed_seq"`
	AckedSeq    uint64 `json:"acked_seq"`
	LagSeqs     uint64 `json:"lag_seqs"`
	Connected   bool   `json:"connected"`
}

// DeliveryStatsResponse is the body of a KindDeliveryStats response.
type DeliveryStatsResponse struct {
	Subscribers []SubscriberDelivery `json:"subscribers"`
	// LogSeq is the provider's changelog tail (0 if not durable).
	LogSeq uint64 `json:"log_seq"`
	// Role is "primary" or "replica" ("" on pre-replication nodes).
	Role string `json:"role,omitempty"`
	// Epoch is the node's current replication epoch (0 when epochs are not
	// in play, e.g. a non-durable provider).
	Epoch uint64 `json:"epoch,omitempty"`
	// Followers lists connected (and recently connected) follower MDPs
	// replicating from this node.
	Followers []FollowerDelivery `json:"followers,omitempty"`
}

// MetricsResponse is the body of a KindMetrics response: the node's
// metrics registry in Prometheus text exposition format.
type MetricsResponse struct {
	Text string `json:"text"`
}

// NamedRuleRequest registers a named rule usable as an extension.
type NamedRuleRequest struct {
	Name  string `json:"name"`
	Rule  string `json:"rule"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// QueryRequest evaluates an MDV query at an LMR.
type QueryRequest struct {
	Query string `json:"query"`
}

// AddSubscriptionRequest asks an LMR to subscribe to its MDP.
type AddSubscriptionRequest struct {
	Rule string `json:"rule"`
}

// ListResourcesRequest lists cached resources at an LMR.
type ListResourcesRequest struct {
	Class string `json:"class"`
}
