// Package wire implements MDV's network protocol: length-prefixed JSON
// messages over TCP, with synchronous request/response calls and
// asynchronous server pushes (the MDP publishing changesets to attached
// LMRs). The same message plumbing serves both tiers' servers (MDP and
// LMR).
//
// Fault tolerance. Wide-area links stall, half-die, and reset; the wire
// layer bounds the damage:
//
//   - Every accepted connection owns a bounded outbound queue drained by a
//     dedicated writer goroutine. Server pushes (Notify) never block on a
//     peer's TCP window: a full queue means the peer is not draining, the
//     connection is closed, and the caller gets ErrSlowSubscriber. The
//     subscriber reconnects and resumes gap-free from its changelog cursor.
//   - Reads and writes carry deadlines (Config.IdleTimeout /
//     Config.WriteTimeout), so a half-open peer is detected within a
//     configured bound instead of an OS TCP timeout.
//   - Both sides heartbeat: clients issue request pings (KindPing) and
//     judge liveness by inbound silence; servers push pings from the
//     writer goroutine and measure per-connection RTT from the echoed
//     pongs. Liveness traffic flows on dedicated goroutines, so a slow
//     request handler never starves it.
//   - Errors are classified: RemoteError (the peer's handler failed —
//     fatal, retrying won't help) versus transport errors (timeouts,
//     resets, closed connections — retryable on a fresh connection), see
//     IsRetryable.
package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// MaxMessageSize bounds a single message (16 MiB): a malformed or malicious
// length prefix must not make a node allocate unboundedly.
const MaxMessageSize = 16 << 20

// DefaultSendQueue is the per-connection outbound queue capacity when
// Config.SendQueue is zero.
const DefaultSendQueue = 256

// KindPing and KindPong are wire-level liveness messages, handled below
// the request handler. A client pings with a normal request (empty
// response); a server pings with an ID-0 push carrying a timestamp the
// client echoes back as a pong push.
const (
	KindPing = "ping"
	KindPong = "pong"
)

// ProtocolVersion is this build's wire protocol version. Dialing clients
// send it in a hello request before anything else; servers verify it and
// echo their own. Either side failing the comparison reports a descriptive
// RemoteError and refuses the connection, so mixed-version deployments
// (MDP/LMR/replica) fail loudly at connect instead of mis-decoding frames.
//
// v2 added epochs: the server's hello echo carries its replication epoch,
// and replication/write payloads grew epoch fields.
//
// v3 added interest-group coalesced delivery: changeset pushes may carry a
// member_credits ownership map, and resume replays may arrive as
// changeset_batch pushes.
const ProtocolVersion = 3

// KindHello is the version handshake request, handled below the request
// handler like the liveness messages.
const KindHello = "hello"

// helloBody carries one side's protocol version and, in the server's
// echo, its replication epoch (0 when the node has none — a non-durable
// provider or an LMR). Exposing the epoch at handshake time lets a
// failover-aware dialer reject a stale ex-primary before sending it
// anything.
type helloBody struct {
	Version int    `json:"version"`
	Epoch   uint64 `json:"epoch,omitempty"`
}

// pingBody carries the sender's send timestamp so the echoed pong yields
// an RTT without any shared clock.
type pingBody struct {
	T int64 `json:"t"`
}

// Config tunes a connection's fault-tolerance behavior. The zero value
// disables all of it (no deadlines, no heartbeat, default queue size),
// which matches the pre-fault-tolerant wire layer.
type Config struct {
	// WriteTimeout bounds each message write. A peer that stops draining
	// its socket fails the write within this bound; the connection is then
	// closed. Zero disables the deadline.
	WriteTimeout time.Duration
	// IdleTimeout bounds inbound silence: if no message (of any kind)
	// arrives within it, the peer is considered dead and the connection is
	// closed. Heartbeats keep healthy connections under the bound. Zero
	// disables the deadline; on clients with a heartbeat configured, the
	// effective bound defaults to 3x the heartbeat interval.
	IdleTimeout time.Duration
	// HeartbeatInterval is the ping period. On a client it triggers
	// request pings (RTT measured at the client); on a server the writer
	// goroutine pushes pings (RTT measured per connection from the echoed
	// pong). Zero disables heartbeats.
	HeartbeatInterval time.Duration
	// SendQueue is the per-connection outbound queue capacity (messages).
	// Zero means DefaultSendQueue.
	SendQueue int
	// ProtocolVersion overrides the version announced/verified in the
	// connect handshake. Zero means the package's ProtocolVersion; tests
	// use it to simulate a version-skewed peer.
	ProtocolVersion int
	// EpochFn, set on servers that participate in replication, supplies
	// the node's current epoch for the hello echo. Nil announces epoch 0
	// (no epoch).
	EpochFn func() uint64
}

func (c Config) protocolVersion() int {
	if c.ProtocolVersion != 0 {
		return c.ProtocolVersion
	}
	return ProtocolVersion
}

func (c Config) sendQueue() int {
	if c.SendQueue > 0 {
		return c.SendQueue
	}
	return DefaultSendQueue
}

// idleBound is the effective inbound-silence bound.
func (c Config) idleBound() time.Duration {
	if c.IdleTimeout > 0 {
		return c.IdleTimeout
	}
	if c.HeartbeatInterval > 0 {
		return 3 * c.HeartbeatInterval
	}
	return 0
}

// Message is the wire unit. Requests carry a Kind and Body; responses echo
// the request ID and carry a Body or an Error; pushes are server-initiated
// messages with ID 0 and a Kind.
type Message struct {
	ID    uint64          `json:"id"`
	Kind  string          `json:"kind,omitempty"`
	Error string          `json:"error,omitempty"`
	Body  json.RawMessage `json:"body,omitempty"`
}

// encBufPool recycles the frame-assembly buffers of WriteMessage. Writer
// goroutines frame thousands of messages per second; pooling keeps the
// header+payload copy from allocating per message.
var encBufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// WriteMessage frames and writes one message. The header and payload are
// assembled in a pooled buffer and hit the writer with a single Write, so a
// net.Conn pays one syscall per message instead of two.
func WriteMessage(w io.Writer, m *Message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(payload) > MaxMessageSize {
		return fmt.Errorf("wire: message of %d bytes exceeds limit", len(payload))
	}
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	_, err = w.Write(buf.Bytes())
	encBufPool.Put(buf)
	return err
}

// EncodeMessage marshals and frames a message into a standalone byte slice
// that can be written verbatim to any connection. Group fan-out uses it to
// pay the JSON encoding once and enqueue the same frame on every member
// connection (WriteRaw / NotifyEncoded).
func EncodeMessage(m *Message) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal: %w", err)
	}
	if len(payload) > MaxMessageSize {
		return nil, fmt.Errorf("wire: message of %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	copy(frame[4:], payload)
	return frame, nil
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, fmt.Errorf("wire: incoming message of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("wire: unmarshal: %w", err)
	}
	return &m, nil
}

// Error taxonomy.

// ErrClosed is returned for calls on a closed connection.
var ErrClosed = errors.New("wire: connection closed")

// ErrSlowSubscriber is returned by Notify when the connection's outbound
// queue is full: the peer is not draining fast enough, and the connection
// has been closed to protect the publisher. The peer reconnects and
// resumes from its cursor.
var ErrSlowSubscriber = errors.New("wire: send queue overflow (slow subscriber disconnected)")

// RemoteError is an application-level failure reported by the peer's
// request handler. The request reached the peer and was rejected; a fresh
// connection will not change the outcome, so remote errors are fatal
// (never retryable).
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return e.Msg }

// IsRetryable reports whether err is a transport-level failure that a
// fresh connection (possibly after a backoff) may resolve: closed or reset
// connections, I/O timeouts, refused dials, torn streams. Application
// failures (RemoteError) and caller-initiated cancellation are fatal.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	switch {
	case errors.Is(err, ErrClosed),
		errors.Is(err, ErrSlowSubscriber),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, os.ErrDeadlineExceeded),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, syscall.ETIMEDOUT):
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr)
}

// Handler processes one request on a server and returns the response body.
// The conn is provided so handlers can attach push channels.
type Handler func(conn *ServerConn, kind string, body json.RawMessage) (interface{}, error)

// Server accepts connections and dispatches requests to a Handler.
type Server struct {
	ln      net.Listener
	handler Handler
	cfg     Config
	mu      sync.Mutex
	conns   map[*ServerConn]bool
	closed  bool
	wg      sync.WaitGroup
	// OnDisconnect is called when a connection closes (for push-channel
	// cleanup). Optional.
	OnDisconnect func(conn *ServerConn)
}

// NewServer starts a server listening on addr (e.g. "127.0.0.1:0") with a
// zero Config (no deadlines, no heartbeat).
func NewServer(addr string, handler Handler) (*Server, error) {
	return NewServerConfig(addr, handler, Config{})
}

// NewServerConfig starts a server with explicit fault-tolerance settings.
func NewServerConfig(addr string, handler Handler, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: handler, cfg: cfg, conns: map[*ServerConn]bool{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// NumConns returns the number of live accepted connections.
func (s *Server) NumConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Close stops the server and closes all connections. It returns only after
// every per-connection goroutine (reader and writer) has exited, so no
// goroutine or socket outlives it.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	conns := make([]*ServerConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		c := newServerConn(nc, s)
		// Registration and goroutine spawn are one critical section with
		// the closed check: either the conn is fully registered before
		// Close sweeps (so the sweep closes it and wg.Wait joins its
		// goroutines), or Close already ran and the socket is closed here.
		// Nothing accepted can slip between Close's sweep and its Wait.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[c] = true
		s.wg.Add(2)
		go s.serveConn(c)
		go c.writeLoop(&s.wg)
		s.mu.Unlock()
	}
}

func (s *Server) serveConn(c *ServerConn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		if s.OnDisconnect != nil {
			s.OnDisconnect(c)
		}
	}()
	idle := s.cfg.idleBound()
	for {
		if idle > 0 {
			c.nc.SetReadDeadline(time.Now().Add(idle))
		}
		m, err := ReadMessage(c.nc)
		if err != nil {
			return
		}
		c.lastRecv.Store(time.Now().UnixNano())
		// Liveness traffic is handled below the request handler.
		if m.ID == 0 {
			if m.Kind == KindPong {
				var pb pingBody
				if json.Unmarshal(m.Body, &pb) == nil && pb.T != 0 {
					c.rtt.Store(time.Now().UnixNano() - pb.T)
				}
			}
			continue
		}
		if m.Kind == KindPing {
			if err := c.send(&Message{ID: m.ID}); err != nil {
				return
			}
			continue
		}
		if m.Kind == KindHello {
			resp := &Message{ID: m.ID}
			var hb helloBody
			if err := json.Unmarshal(m.Body, &hb); err != nil {
				resp.Error = fmt.Sprintf("wire: malformed hello: %v", err)
			} else if hb.Version != s.cfg.protocolVersion() {
				resp.Error = fmt.Sprintf(
					"wire: protocol version mismatch: peer speaks v%d, this node speaks v%d; upgrade the older side before connecting",
					hb.Version, s.cfg.protocolVersion())
			} else {
				echo := helloBody{Version: s.cfg.protocolVersion()}
				if s.cfg.EpochFn != nil {
					echo.Epoch = s.cfg.EpochFn()
				}
				if body, err := json.Marshal(&echo); err == nil {
					resp.Body = body
				}
			}
			// On mismatch the error response is still delivered; the peer
			// closes the connection after reading it.
			if err := c.send(resp); err != nil {
				return
			}
			continue
		}
		resp := &Message{ID: m.ID}
		result, err := s.handler(c, m.Kind, m.Body)
		if err != nil {
			resp.Error = err.Error()
		} else if result != nil {
			body, err := json.Marshal(result)
			if err != nil {
				resp.Error = fmt.Sprintf("wire: marshal response: %v", err)
			} else {
				resp.Body = body
			}
		}
		if err := c.send(resp); err != nil {
			return
		}
	}
}

// ServerConn is one accepted connection. Handlers may keep a reference to
// push messages to it later (Notify). All writes flow through a bounded
// queue drained by a dedicated writer goroutine.
type ServerConn struct {
	nc        net.Conn
	server    *Server
	sendCh    chan outbound
	closed    chan struct{}
	closeOnce sync.Once
	enqueued  atomic.Uint64
	lastRecv  atomic.Int64 // unix nanos of the last inbound message
	rtt       atomic.Int64 // nanos, last push-ping round trip (0 = unknown)
	// Tag is handler-defined metadata (e.g. the attached subscriber name).
	Tag atomic.Value
}

// outbound is one queued write: either a message to frame on the writer
// goroutine, or a pre-encoded frame written verbatim (encode-once fan-out).
type outbound struct {
	msg   *Message
	frame []byte
}

func newServerConn(nc net.Conn, s *Server) *ServerConn {
	c := &ServerConn{
		nc:     nc,
		server: s,
		sendCh: make(chan outbound, s.cfg.sendQueue()),
		closed: make(chan struct{}),
	}
	c.lastRecv.Store(time.Now().UnixNano())
	return c
}

// writeLoop drains the outbound queue onto the socket, applying the write
// deadline per message, and pushes liveness pings on the heartbeat
// interval. It is the only goroutine that writes to the socket.
func (c *ServerConn) writeLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	var tick <-chan time.Time
	if hb := c.server.cfg.HeartbeatInterval; hb > 0 {
		t := time.NewTicker(hb)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case o := <-c.sendCh:
			var err error
			if o.frame != nil {
				err = c.writeFrame(o.frame)
			} else {
				err = c.writeNow(o.msg)
			}
			if err != nil {
				c.Close()
				return
			}
		case <-tick:
			body, _ := json.Marshal(&pingBody{T: time.Now().UnixNano()})
			if err := c.writeNow(&Message{ID: 0, Kind: KindPing, Body: body}); err != nil {
				c.Close()
				return
			}
		case <-c.closed:
			return
		}
	}
}

func (c *ServerConn) writeNow(m *Message) error {
	if wt := c.server.cfg.WriteTimeout; wt > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(wt))
	}
	return WriteMessage(c.nc, m)
}

// writeFrame writes a pre-encoded frame verbatim under the write deadline.
func (c *ServerConn) writeFrame(frame []byte) error {
	if wt := c.server.cfg.WriteTimeout; wt > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(wt))
	}
	_, err := c.nc.Write(frame)
	return err
}

// send enqueues a message, blocking until there is queue space or the
// connection closes. Responses use it: request processing is serial per
// connection, so the wait is bounded by the writer's own deadline-guarded
// progress.
func (c *ServerConn) send(m *Message) error {
	return c.enqueue(outbound{msg: m})
}

func (c *ServerConn) enqueue(o outbound) error {
	select {
	case c.sendCh <- o:
		c.enqueued.Add(1)
		return nil
	case <-c.closed:
		return ErrClosed
	}
}

// Notify pushes a server-initiated message (ID 0) to the peer without
// blocking: if the outbound queue is full the peer is a slow subscriber,
// the connection is closed, and ErrSlowSubscriber is returned. The
// publisher is never exposed to the peer's TCP window.
func (c *ServerConn) Notify(kind string, body interface{}) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.notify(outbound{msg: &Message{ID: 0, Kind: kind, Body: payload}})
}

// NotifyEncoded is Notify for a frame already produced by EncodeMessage:
// the same slice can be enqueued on any number of connections without
// re-marshaling. The caller must not mutate the frame afterwards.
func (c *ServerConn) NotifyEncoded(frame []byte) error {
	return c.notify(outbound{frame: frame})
}

func (c *ServerConn) notify(o outbound) error {
	select {
	case c.sendCh <- o:
		c.enqueued.Add(1)
		return nil
	case <-c.closed:
		return ErrClosed
	default:
		c.Close()
		return ErrSlowSubscriber
	}
}

// NotifySync pushes a server-initiated message, blocking until it is
// queued or the connection closes. Resume replays use it: a replay can be
// much longer than the queue, and the receiver is actively draining it, so
// backpressure (bounded by the writer's deadline-guarded progress) is the
// correct policy rather than overflow-disconnect.
func (c *ServerConn) NotifySync(kind string, body interface{}) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.send(&Message{ID: 0, Kind: kind, Body: payload})
}

// NotifySyncEncoded is NotifySync for a pre-encoded frame.
func (c *ServerConn) NotifySyncEncoded(frame []byte) error {
	return c.enqueue(outbound{frame: frame})
}

// Close closes the underlying connection and releases the writer.
func (c *ServerConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.nc.Close()
}

// RemoteAddr returns the peer address.
func (c *ServerConn) RemoteAddr() string { return c.nc.RemoteAddr().String() }

// QueueDepth returns the number of queued outbound messages.
func (c *ServerConn) QueueDepth() int { return len(c.sendCh) }

// QueueCap returns the outbound queue capacity.
func (c *ServerConn) QueueCap() int { return cap(c.sendCh) }

// Enqueued returns the total number of messages queued on this connection.
func (c *ServerConn) Enqueued() uint64 { return c.enqueued.Load() }

// IdleFor returns the time since the last inbound message.
func (c *ServerConn) IdleFor() time.Duration {
	return time.Duration(time.Now().UnixNano() - c.lastRecv.Load())
}

// RTT returns the last heartbeat round-trip time measured on this
// connection (zero until the first pong arrives; requires a server
// heartbeat interval).
func (c *ServerConn) RTT() time.Duration { return time.Duration(c.rtt.Load()) }

// Client is a connection to a Server supporting concurrent calls and
// receiving pushes.
type Client struct {
	nc        net.Conn
	cfg       Config
	writeMu   sync.Mutex
	mu        sync.Mutex
	pending   map[uint64]chan *Message
	nextID    uint64
	closed    bool
	closeCh   chan struct{}
	lastRecv  atomic.Int64  // unix nanos of the last inbound message
	rtt       atomic.Int64  // nanos, last request-ping round trip
	bytesRead atomic.Uint64 // total inbound bytes (frames + headers)
	// peerEpoch is the replication epoch the server announced in its hello
	// echo (0 = none).
	peerEpoch atomic.Uint64
	// OnPush handles server-initiated messages. Set before issuing calls
	// that provoke pushes; safe to leave nil (pushes are dropped).
	OnPush func(kind string, body json.RawMessage)
}

// Dial connects to a wire server with a zero Config.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, Config{})
}

// DialConfig connects to a wire server with explicit fault-tolerance
// settings. With a heartbeat interval set, the client pings the server on
// that period and closes the connection when inbound silence exceeds the
// idle bound (IdleTimeout, defaulting to 3x the interval).
func DialConfig(addr string, cfg Config) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{nc: nc, cfg: cfg, pending: map[uint64]chan *Message{}, closeCh: make(chan struct{})}
	c.lastRecv.Store(time.Now().UnixNano())
	go c.readLoop()
	if err := c.handshake(); err != nil {
		c.Close()
		return nil, err
	}
	if cfg.HeartbeatInterval > 0 {
		go c.heartbeatLoop()
	}
	return c, nil
}

// handshake exchanges protocol versions before the connection carries
// anything else. The timeout follows the idle bound when one is configured
// (chaos tests rely on a blackholed dial failing within it) and otherwise
// defaults to 10s.
func (c *Client) handshake() error {
	timeout := c.cfg.idleBound()
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var resp helloBody
	if err := c.CallContext(ctx, KindHello, &helloBody{Version: c.cfg.protocolVersion()}, &resp); err != nil {
		return err
	}
	if resp.Version != c.cfg.protocolVersion() {
		return &RemoteError{Msg: fmt.Sprintf(
			"wire: protocol version mismatch: peer speaks v%d, this node speaks v%d; upgrade the older side before connecting",
			resp.Version, c.cfg.protocolVersion())}
	}
	c.peerEpoch.Store(resp.Epoch)
	return nil
}

// PeerEpoch returns the replication epoch the server announced at
// handshake time (0 when the server has none). It is a connect-time
// snapshot, not a live value.
func (c *Client) PeerEpoch() uint64 { return c.peerEpoch.Load() }

func (c *Client) readLoop() {
	idle := c.cfg.idleBound()
	src := &countingReader{r: c.nc, n: &c.bytesRead}
	for {
		if idle > 0 {
			c.nc.SetReadDeadline(time.Now().Add(idle))
		}
		m, err := ReadMessage(src)
		if err != nil {
			c.mu.Lock()
			c.closed = true
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			close(c.closeCh)
			return
		}
		c.lastRecv.Store(time.Now().UnixNano())
		if m.ID == 0 {
			if m.Kind == KindPing {
				// Echo the server's liveness probe (body carries its
				// timestamp) so it can measure RTT and keep this
				// connection under its idle bound.
				c.write(&Message{ID: 0, Kind: KindPong, Body: m.Body})
				continue
			}
			if c.OnPush != nil {
				c.OnPush(m.Kind, m.Body)
			}
			continue
		}
		c.mu.Lock()
		ch := c.pending[m.ID]
		delete(c.pending, m.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

// heartbeatLoop pings the server on the configured interval. Liveness is
// judged by inbound silence, not by the ping's own round trip: any inbound
// message (a pong, a push, a response) proves the peer alive, so a server
// briefly busy in a long request handler is not falsely declared dead.
func (c *Client) heartbeatLoop() {
	interval := c.cfg.HeartbeatInterval
	bound := c.cfg.idleBound()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.closeCh:
			return
		case <-t.C:
		}
		if time.Now().UnixNano()-c.lastRecv.Load() > int64(bound) {
			c.Close()
			return
		}
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), bound)
			defer cancel()
			start := time.Now()
			if err := c.CallContext(ctx, KindPing, nil, nil); err == nil {
				c.rtt.Store(int64(time.Since(start)))
			}
		}()
	}
}

// RTT returns the last heartbeat round-trip time (zero until the first
// ping completes; requires a heartbeat interval).
func (c *Client) RTT() time.Duration { return time.Duration(c.rtt.Load()) }

// BytesRead returns the total bytes received on this connection, including
// frame headers (the benchmarks' bytes-on-wire measurement).
func (c *Client) BytesRead() uint64 { return c.bytesRead.Load() }

// countingReader counts the bytes flowing through an io.Reader.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.n.Add(uint64(n))
	}
	return n, err
}

// write frames one message onto the socket under the write lock, applying
// the configured write deadline.
func (c *Client) write(m *Message) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if wt := c.cfg.WriteTimeout; wt > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(wt))
	}
	return WriteMessage(c.nc, m)
}

// Call sends a request and decodes the response body into out (which may be
// nil to discard it). It blocks until the response arrives or the
// connection dies.
func (c *Client) Call(kind string, req interface{}, out interface{}) error {
	return c.CallContext(context.Background(), kind, req, out)
}

// CallContext is Call with a deadline/cancellation context. On ctx expiry
// the call returns ctx.Err() and the response, if it ever arrives, is
// discarded. A deadline-expired call is retryable (the peer may be slow or
// dead); a canceled one is not.
func (c *Client) CallContext(ctx context.Context, kind string, req interface{}, out interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *Message, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	err = c.write(&Message{ID: id, Kind: kind, Body: body})
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}
	select {
	case m, ok := <-ch:
		if !ok {
			return ErrClosed
		}
		if m.Error != "" {
			return &RemoteError{Msg: m.Error}
		}
		if out != nil && len(m.Body) > 0 {
			return json.Unmarshal(m.Body, out)
		}
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return ctx.Err()
	}
}

// Ping round-trips a liveness probe and returns its latency.
func (c *Client) Ping(ctx context.Context) (time.Duration, error) {
	start := time.Now()
	if err := c.CallContext(ctx, KindPing, nil, nil); err != nil {
		return 0, err
	}
	rtt := time.Since(start)
	c.rtt.Store(int64(rtt))
	return rtt, nil
}

// Close closes the client connection.
func (c *Client) Close() error {
	return c.nc.Close()
}

// Done is closed when the connection terminates.
func (c *Client) Done() <-chan struct{} { return c.closeCh }

// Decode is a helper for handlers: unmarshal a request body into v,
// tolerating an empty body.
func Decode(body json.RawMessage, v interface{}) error {
	if len(body) == 0 {
		return nil
	}
	return json.Unmarshal(body, v)
}
