// Package wire implements MDV's network protocol: length-prefixed JSON
// messages over TCP, with synchronous request/response calls and
// asynchronous server pushes (the MDP publishing changesets to attached
// LMRs). The same message plumbing serves both tiers' servers (MDP and
// LMR).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// MaxMessageSize bounds a single message (16 MiB): a malformed or malicious
// length prefix must not make a node allocate unboundedly.
const MaxMessageSize = 16 << 20

// Message is the wire unit. Requests carry a Kind and Body; responses echo
// the request ID and carry a Body or an Error; pushes are server-initiated
// messages with ID 0 and a Kind.
type Message struct {
	ID    uint64          `json:"id"`
	Kind  string          `json:"kind,omitempty"`
	Error string          `json:"error,omitempty"`
	Body  json.RawMessage `json:"body,omitempty"`
}

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m *Message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(payload) > MaxMessageSize {
		return fmt.Errorf("wire: message of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, fmt.Errorf("wire: incoming message of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("wire: unmarshal: %w", err)
	}
	return &m, nil
}

// Handler processes one request on a server and returns the response body.
// The conn is provided so handlers can attach push channels.
type Handler func(conn *ServerConn, kind string, body json.RawMessage) (interface{}, error)

// Server accepts connections and dispatches requests to a Handler.
type Server struct {
	ln      net.Listener
	handler Handler
	mu      sync.Mutex
	conns   map[*ServerConn]bool
	closed  bool
	wg      sync.WaitGroup
	// OnDisconnect is called when a connection closes (for push-channel
	// cleanup). Optional.
	OnDisconnect func(conn *ServerConn)
}

// NewServer starts a server listening on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, handler Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: handler, conns: map[*ServerConn]bool{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*ServerConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		c := &ServerConn{nc: nc, server: s}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[c] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) serveConn(c *ServerConn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		if s.OnDisconnect != nil {
			s.OnDisconnect(c)
		}
	}()
	for {
		m, err := ReadMessage(c.nc)
		if err != nil {
			return
		}
		resp := &Message{ID: m.ID}
		result, err := s.handler(c, m.Kind, m.Body)
		if err != nil {
			resp.Error = err.Error()
		} else if result != nil {
			body, err := json.Marshal(result)
			if err != nil {
				resp.Error = fmt.Sprintf("wire: marshal response: %v", err)
			} else {
				resp.Body = body
			}
		}
		if err := c.write(resp); err != nil {
			return
		}
	}
}

// ServerConn is one accepted connection. Handlers may keep a reference to
// push messages to it later (Notify).
type ServerConn struct {
	nc      net.Conn
	server  *Server
	writeMu sync.Mutex
	// Tag is handler-defined metadata (e.g. the attached subscriber name).
	Tag atomic.Value
}

func (c *ServerConn) write(m *Message) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WriteMessage(c.nc, m)
}

// Notify pushes a server-initiated message (ID 0) to the peer.
func (c *ServerConn) Notify(kind string, body interface{}) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.write(&Message{ID: 0, Kind: kind, Body: payload})
}

// Close closes the underlying connection.
func (c *ServerConn) Close() error { return c.nc.Close() }

// RemoteAddr returns the peer address.
func (c *ServerConn) RemoteAddr() string { return c.nc.RemoteAddr().String() }

// Client is a connection to a Server supporting concurrent calls and
// receiving pushes.
type Client struct {
	nc      net.Conn
	writeMu sync.Mutex
	mu      sync.Mutex
	pending map[uint64]chan *Message
	nextID  uint64
	closed  bool
	closeCh chan struct{}
	// OnPush handles server-initiated messages. Set before issuing calls
	// that provoke pushes; safe to leave nil (pushes are dropped).
	OnPush func(kind string, body json.RawMessage)
}

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{nc: nc, pending: map[uint64]chan *Message{}, closeCh: make(chan struct{})}
	go c.readLoop()
	return c, nil
}

// ErrClosed is returned for calls on a closed client.
var ErrClosed = errors.New("wire: connection closed")

func (c *Client) readLoop() {
	for {
		m, err := ReadMessage(c.nc)
		if err != nil {
			c.mu.Lock()
			c.closed = true
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			close(c.closeCh)
			return
		}
		if m.ID == 0 {
			if c.OnPush != nil {
				c.OnPush(m.Kind, m.Body)
			}
			continue
		}
		c.mu.Lock()
		ch := c.pending[m.ID]
		delete(c.pending, m.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

// Call sends a request and decodes the response body into out (which may be
// nil to discard it).
func (c *Client) Call(kind string, req interface{}, out interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *Message, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err = WriteMessage(c.nc, &Message{ID: id, Kind: kind, Body: body})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}
	m, ok := <-ch
	if !ok {
		return ErrClosed
	}
	if m.Error != "" {
		return errors.New(m.Error)
	}
	if out != nil && len(m.Body) > 0 {
		return json.Unmarshal(m.Body, out)
	}
	return nil
}

// Close closes the client connection.
func (c *Client) Close() error {
	return c.nc.Close()
}

// Done is closed when the connection terminates.
func (c *Client) Done() <-chan struct{} { return c.closeCh }

// Decode is a helper for handlers: unmarshal a request body into v,
// tolerating an empty body.
func Decode(body json.RawMessage, v interface{}) error {
	if len(body) == 0 {
		return nil
	}
	return json.Unmarshal(body, v)
}
