package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{ID: 42, Kind: "test", Body: json.RawMessage(`{"x":1}`)}
	if err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 42 || out.Kind != "test" || string(out.Body) != `{"x":1}` {
		t.Errorf("round trip: %+v", out)
	}
}

func TestMessageSizeLimit(t *testing.T) {
	big := &Message{ID: 1, Body: json.RawMessage(`"` + strings.Repeat("x", MaxMessageSize) + `"`)}
	if err := WriteMessage(&bytes.Buffer{}, big); err == nil {
		t.Error("oversized write accepted")
	}
	// A forged oversized length prefix is rejected before allocation.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("oversized read accepted")
	}
}

func TestReadMessageTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteMessage(&buf, &Message{ID: 1, Kind: "k"})
	data := buf.Bytes()
	if _, err := ReadMessage(bytes.NewReader(data[:len(data)-2])); err == nil {
		t.Error("truncated message accepted")
	}
	if _, err := ReadMessage(bytes.NewReader(data[:2])); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestReadMessageGarbage(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 3})
	buf.WriteString("xyz")
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("non-JSON payload accepted")
	}
}

type echoReq struct {
	Text string `json:"text"`
}

func echoServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", func(conn *ServerConn, kind string, body json.RawMessage) (interface{}, error) {
		switch kind {
		case "echo":
			var req echoReq
			if err := Decode(body, &req); err != nil {
				return nil, err
			}
			return &echoReq{Text: req.Text}, nil
		case "fail":
			return nil, fmt.Errorf("deliberate failure")
		case "push-me":
			go conn.Notify("poke", &echoReq{Text: "pushed"})
			return nil, nil
		default:
			return nil, fmt.Errorf("unknown kind %q", kind)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr()
}

func TestClientServerCall(t *testing.T) {
	_, addr := echoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp echoReq
	if err := c.Call("echo", &echoReq{Text: "hello"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Text != "hello" {
		t.Errorf("echo = %q", resp.Text)
	}
	// Errors propagate.
	if err := c.Call("fail", nil, nil); err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Errorf("error propagation: %v", err)
	}
	// Unknown kinds error rather than hang.
	if err := c.Call("nope", nil, nil); err == nil {
		t.Error("unknown kind accepted")
	}
	// Connection keeps working after errors.
	if err := c.Call("echo", &echoReq{Text: "again"}, &resp); err != nil || resp.Text != "again" {
		t.Errorf("post-error call: %v %q", err, resp.Text)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, addr := echoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				want := fmt.Sprintf("g%d-%d", g, i)
				var resp echoReq
				if err := c.Call("echo", &echoReq{Text: want}, &resp); err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if resp.Text != want {
					t.Errorf("cross-talk: got %q want %q", resp.Text, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestServerPush(t *testing.T) {
	_, addr := echoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := make(chan string, 1)
	c.OnPush = func(kind string, body json.RawMessage) {
		var req echoReq
		json.Unmarshal(body, &req)
		got <- kind + ":" + req.Text
	}
	if err := c.Call("push-me", nil, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "poke:pushed" {
			t.Errorf("push = %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push not delivered")
	}
}

func TestCallAfterClose(t *testing.T) {
	_, addr := echoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	<-c.Done()
	if err := c.Call("echo", &echoReq{Text: "x"}, nil); err == nil {
		t.Error("call on closed connection succeeded")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv, addr := echoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close()
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client not unblocked by server close")
	}
	if err := c.Call("echo", nil, nil); err == nil {
		t.Error("call after server close succeeded")
	}
}

func TestOnDisconnect(t *testing.T) {
	disconnected := make(chan struct{}, 1)
	srv, err := NewServer("127.0.0.1:0", func(conn *ServerConn, kind string, body json.RawMessage) (interface{}, error) {
		conn.Tag.Store("tagged")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.OnDisconnect = func(conn *ServerConn) {
		if tag, _ := conn.Tag.Load().(string); tag == "tagged" {
			disconnected <- struct{}{}
		}
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Call("anything", nil, nil); err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case <-disconnected:
	case <-time.After(5 * time.Second):
		t.Fatal("OnDisconnect not invoked")
	}
}
