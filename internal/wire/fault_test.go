package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// TestServerIdleTimeoutClosesDeadPeer: a peer that connects and then goes
// silent (no heartbeats, no requests) is closed within the idle bound.
func TestServerIdleTimeoutClosesDeadPeer(t *testing.T) {
	srv, err := NewServerConfig("127.0.0.1:0", func(*ServerConn, string, json.RawMessage) (interface{}, error) {
		return nil, nil
	}, Config{IdleTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// The server must hang up on us; a read unblocks with EOF well within
	// a few idle intervals.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("silent peer not disconnected")
	} else if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatal("server kept the silent peer past the idle bound")
	}
}

// TestClientHeartbeatDetectsDeadServer: a server that accepts and then
// never answers is declared dead by the client heartbeat within the bound.
func TestClientHeartbeatDetectsDeadServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			// Answer the connect handshake so the dial succeeds, then
			// swallow everything: a peer that dies after connecting.
			go func() {
				if m, err := ReadMessage(nc); err == nil && m.Kind == KindHello {
					body, _ := json.Marshal(&helloBody{Version: ProtocolVersion})
					WriteMessage(nc, &Message{ID: m.ID, Body: body})
				}
				io.Copy(io.Discard, nc)
			}()
		}
	}()
	c, err := DialConfig(ln.Addr().String(), Config{HeartbeatInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("client did not detect the dead server")
	}
}

// TestHeartbeatKeepsIdleConnAlive: with both heartbeats on, a connection
// with no application traffic stays up well past the idle bound, and both
// sides measure an RTT.
func TestHeartbeatKeepsIdleConnAlive(t *testing.T) {
	var connMu sync.Mutex
	var serverConn *ServerConn
	srv, err := NewServerConfig("127.0.0.1:0", func(conn *ServerConn, _ string, _ json.RawMessage) (interface{}, error) {
		connMu.Lock()
		serverConn = conn
		connMu.Unlock()
		return nil, nil
	}, Config{HeartbeatInterval: 30 * time.Millisecond, IdleTimeout: 120 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialConfig(srv.Addr(), Config{HeartbeatInterval: 30 * time.Millisecond, IdleTimeout: 120 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("anything", nil, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond) // several idle bounds of silence
	select {
	case <-c.Done():
		t.Fatal("heartbeated idle connection was closed")
	default:
	}
	if err := c.Call("anything", nil, nil); err != nil {
		t.Fatalf("idle connection unusable: %v", err)
	}
	if c.RTT() <= 0 {
		t.Error("client measured no heartbeat RTT")
	}
	connMu.Lock()
	sc := serverConn
	connMu.Unlock()
	if sc.RTT() <= 0 {
		t.Error("server measured no heartbeat RTT")
	}
}

// TestNotifyOverflowDisconnects: a push flood to a peer that is not
// reading overflows the bounded queue; Notify reports ErrSlowSubscriber
// and the connection is closed instead of blocking the publisher.
func TestNotifyOverflowDisconnects(t *testing.T) {
	attached := make(chan *ServerConn, 1)
	srv, err := NewServerConfig("127.0.0.1:0", func(conn *ServerConn, kind string, _ json.RawMessage) (interface{}, error) {
		if kind == "attach" {
			attached <- conn
		}
		return nil, nil
	}, Config{SendQueue: 4, WriteTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// A raw peer that never reads: its TCP receive buffer fills, the
	// writer goroutine stalls on the deadline, the queue overflows.
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := WriteMessage(nc, &Message{ID: 1, Kind: "attach"}); err != nil {
		t.Fatal(err)
	}
	conn := <-attached
	// Large payloads defeat socket buffering quickly.
	payload := make([]byte, 256<<10)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("queue never overflowed")
		}
		err := conn.Notify("flood", payload)
		if errors.Is(err, ErrSlowSubscriber) {
			break
		}
		if errors.Is(err, ErrClosed) {
			t.Fatal("connection closed before overflow was reported")
		}
		if err != nil {
			t.Fatalf("notify: %v", err)
		}
	}
	// After the overflow the conn is dead: further notifies fail fast.
	if err := conn.Notify("after", "x"); err == nil {
		t.Error("notify on overflowed connection succeeded")
	}
}

// TestServerCloseJoinsAllGoroutines hammers accept/close concurrency: no
// connection accepted around Close may leak its goroutines or socket
// (the -race build is the real assertion here).
func TestServerCloseJoinsAllGoroutines(t *testing.T) {
	for i := 0; i < 20; i++ {
		srv, err := NewServerConfig("127.0.0.1:0", func(*ServerConn, string, json.RawMessage) (interface{}, error) {
			return nil, nil
		}, Config{HeartbeatInterval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for j := 0; j < 8; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := Dial(srv.Addr())
				if err != nil {
					return
				}
				c.Call("x", nil, nil)
				c.Close()
			}()
		}
		// Close races the dials: some conns are pre-accept, some
		// mid-registration, some serving.
		srv.Close()
		wg.Wait()
		if n := srv.NumConns(); n != 0 {
			t.Fatalf("iteration %d: %d connections survived Close", i, n)
		}
	}
}

// TestCallContextTimeout: a stalled request respects the context deadline
// and is classified retryable; cancellation is fatal.
func TestCallContextTimeout(t *testing.T) {
	release := make(chan struct{})
	srv, err := NewServer("127.0.0.1:0", func(_ *ServerConn, kind string, _ json.RawMessage) (interface{}, error) {
		if kind == "stall" {
			<-release
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(release)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = c.CallContext(ctx, "stall", nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if !IsRetryable(err) {
		t.Error("timeout not classified retryable")
	}
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	err = c.CallContext(cctx, "stall", nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if IsRetryable(err) {
		t.Error("cancellation classified retryable")
	}
}

// TestErrorClassification: remote application errors are fatal; transport
// errors are retryable.
func TestErrorClassification(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(*ServerConn, string, json.RawMessage) (interface{}, error) {
		return nil, fmt.Errorf("no such document")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("x", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "no such document" {
		t.Fatalf("err = %#v, want RemoteError", err)
	}
	if IsRetryable(err) {
		t.Error("remote application error classified retryable")
	}
	// Transport failure: server gone.
	srv.Close()
	<-c.Done()
	if err := c.Call("x", nil, nil); !IsRetryable(err) {
		t.Errorf("closed-connection error %v not classified retryable", err)
	}
	if IsRetryable(nil) {
		t.Error("nil error classified retryable")
	}
}

// TestPing measures a round trip through the wire-level ping handler.
func TestPing(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(*ServerConn, string, json.RawMessage) (interface{}, error) {
		t.Error("ping reached the application handler")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rtt, err := c.Ping(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 {
		t.Errorf("rtt = %v", rtt)
	}
	if c.RTT() != rtt {
		t.Errorf("RTT() = %v, want %v", c.RTT(), rtt)
	}
}
