package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func nopHandler(conn *ServerConn, kind string, body json.RawMessage) (interface{}, error) {
	return nil, nil
}

// TestHandshakeVersionMatch verifies same-version peers connect and the
// connection then carries calls normally.
func TestHandshakeVersionMatch(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", nopHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatalf("dial with matching version: %v", err)
	}
	defer c.Close()
	if err := c.Call("anything", nil, nil); err != nil {
		t.Fatalf("call after handshake: %v", err)
	}
}

// TestHandshakeVersionSkew is the regression test for mixed-version
// deployments: a client announcing a skewed protocol version must be
// refused at connect with a descriptive RemoteError naming both versions,
// not allowed through to mis-decode frames later.
func TestHandshakeVersionSkew(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", nopHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	_, err = DialConfig(s.Addr(), Config{ProtocolVersion: ProtocolVersion + 1})
	if err == nil {
		t.Fatal("dial with skewed version succeeded, want refusal")
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("dial error = %v (%T), want *RemoteError", err, err)
	}
	if !strings.Contains(err.Error(), "protocol version mismatch") {
		t.Fatalf("error %q does not describe the version mismatch", err)
	}
	ours := fmt.Sprintf("v%d", ProtocolVersion)
	theirs := fmt.Sprintf("v%d", ProtocolVersion+1)
	if !strings.Contains(err.Error(), ours) || !strings.Contains(err.Error(), theirs) {
		t.Fatalf("error %q does not name both versions", err)
	}
	if IsRetryable(err) {
		t.Fatal("version mismatch classified retryable; reconnecting cannot fix it")
	}
}

// TestHandshakeServerSkew covers the other direction: the server speaks a
// newer version than the dialing client.
func TestHandshakeServerSkew(t *testing.T) {
	s, err := NewServerConfig("127.0.0.1:0", nopHandler, Config{ProtocolVersion: ProtocolVersion + 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = Dial(s.Addr())
	if err == nil {
		t.Fatal("dial to newer-version server succeeded, want refusal")
	}
	if !strings.Contains(err.Error(), "protocol version mismatch") {
		t.Fatalf("error %q does not describe the version mismatch", err)
	}
}
