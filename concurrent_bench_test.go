// Benchmarks for the concurrent read path and the pipelined publish
// stage (DESIGN.md §8).
//
// BenchmarkConcurrentQuery measures aggregate LMR query throughput as the
// number of reader goroutines grows, with and without a concurrent
// writer. The read path (repository View -> query evaluator -> rdb
// ReadTxn) takes only shared locks, so on multi-core hardware aggregate
// throughput scales with readers until cores saturate. On a single-core
// machine the useful signal is flatness: adding readers or a concurrent
// writer must not collapse throughput, which it would under the old
// exclusive-lock read path where every query serialized behind every
// other query and behind whole filter runs.
//
// BenchmarkPublishPipelined measures per-registration cost when delivery
// fan-out is expensive (a subscriber that needs ~10ms per changeset —
// think a slow wire peer). In "sequential" mode one goroutine registers
// batches back-to-back: every operation pays filter + delivery. In
// "pipelined" mode four goroutines publish concurrently: delivery
// happens outside the publish lock (behind the order-preserving
// turnstile), so one operation's filter run overlaps another's delivery
// and the per-operation cost approaches max(filter, delivery) instead of
// their sum. The "filterOnly" mode (no attached subscriber) is the floor.
// Delivery here is wall-time, not CPU, so the overlap pays off even on
// one core — but it needs GOMAXPROCS >= 2: with a single P the sleeping
// deliverer's timer wakeup has to wait out the running filter chunk,
// which re-serializes stages the architecture allows to overlap. The
// benchmark raises GOMAXPROCS to 2 on single-proc machines; real
// multi-core deployments need no such help.
package mdv_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdv/internal/core"
	"mdv/internal/lmr"
	"mdv/internal/provider"
	"mdv/internal/rdf"
	"mdv/internal/workload"
)

const cqDocs = 400

// cqQuery is a single-table scan matching the 11 documents whose host
// name starts with host39 (doc 39 and docs 390..399); writerDoc below
// rewrites only synthValue, so the result set is stable across
// iterations and variants.
const cqQuery = `search CycleProvider c register c where c.serverHost contains 'host39'`

var (
	cqMu   sync.Mutex
	cqProv *provider.Provider
	cqNode *lmr.Node
)

// concurrentQueryState builds (once) a provider + LMR pair with cqDocs
// documents cached, mirroring the cached-engine idiom of bench_test.go so
// repeated harness invocations with growing b.N skip the setup.
func concurrentQueryState(b *testing.B) (*provider.Provider, *lmr.Node) {
	b.Helper()
	cqMu.Lock()
	defer cqMu.Unlock()
	if cqNode != nil {
		return cqProv, cqNode
	}
	prov, err := provider.New("mdp", workload.Schema())
	if err != nil {
		b.Fatal(err)
	}
	node, err := lmr.New("lmr", workload.Schema(), prov)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := node.AddSubscription(
		`search CycleProvider c register c where c.serverPort >= 0`); err != nil {
		b.Fatal(err)
	}
	gen := workload.Generator{Type: workload.PATH}
	if err := prov.RegisterDocuments(gen.Batch(0, cqDocs)); err != nil {
		b.Fatal(err)
	}
	cqProv, cqNode = prov, node
	return prov, node
}

// writerDoc rewrites document i (i < 50) with a fresh synthValue so every
// registration produces a real changeset delivered to the LMR, without
// changing which documents cqQuery matches.
func writerDoc(i, v int) *rdf.Document {
	doc := rdf.NewDocument(fmt.Sprintf("doc%d.rdf", i))
	host := doc.NewResource("host", "CycleProvider")
	host.Add("serverHost", rdf.Lit(fmt.Sprintf("host%d.uni-passau.de", i)))
	host.Add("serverPort", rdf.Lit("5874"))
	host.Add("synthValue", rdf.Lit(fmt.Sprint(v)))
	host.Add("serverInformation", rdf.Ref(doc.QualifyID("info")))
	info := doc.NewResource("info", "ServerInformation")
	info.Add("memory", rdf.Lit(fmt.Sprint(i)))
	info.Add("cpu", rdf.Lit("600"))
	return doc
}

func BenchmarkConcurrentQuery(b *testing.B) {
	for _, withWriter := range []bool{false, true} {
		variant := "readonly"
		if withWriter {
			variant = "withWriter"
		}
		b.Run(variant, func(b *testing.B) {
			for _, readers := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
					prov, node := concurrentQueryState(b)
					stop := make(chan struct{})
					var wwg sync.WaitGroup
					if withWriter {
						wwg.Add(1)
						go func() {
							defer wwg.Done()
							for v := 0; ; v++ {
								select {
								case <-stop:
									return
								default:
								}
								if err := prov.RegisterDocument(writerDoc(v%50, v)); err != nil {
									b.Error(err)
									return
								}
								// A steady publish load, not a saturating one:
								// the writer models ongoing metadata churn.
								time.Sleep(500 * time.Microsecond)
							}
						}()
					}
					b.ResetTimer()
					var wg sync.WaitGroup
					for r := 0; r < readers; r++ {
						n := b.N / readers
						if r < b.N%readers {
							n++
						}
						wg.Add(1)
						go func(n int) {
							defer wg.Done()
							for i := 0; i < n; i++ {
								if _, err := node.Query(cqQuery); err != nil {
									b.Error(err)
									return
								}
							}
						}(n)
					}
					wg.Wait()
					b.StopTimer()
					close(stop)
					wwg.Wait()
					b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
				})
			}
		})
	}
}

const (
	ppRuleBase     = 1000
	ppBatch        = 40 // documents per registration: filter ~ delivery cost
	ppDeliveryCost = 10 * time.Millisecond
)

// publishPipelinedRun registers b.N batches across the given number of
// writers against a fresh provider carrying a PATH rule base. With
// deliver=true one subscriber receives every changeset at ppDeliveryCost
// apiece; document indexes start past the rule base so each operation is
// a full triggering run plus exactly that one delivery.
func publishPipelinedRun(b *testing.B, writers int, deliver bool) {
	// The benchmark runner re-applies GOMAXPROCS around every sub-benchmark
	// run, so the bump has to happen inside it.
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}
	prov, err := provider.New("mdp", workload.Schema())
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.Generator{Type: workload.PATH, RuleBase: ppRuleBase}
	for i := 0; i < ppRuleBase; i++ {
		if _, _, err := prov.Subscribe("rules", gen.Rule(i)); err != nil {
			b.Fatal(err)
		}
	}
	if deliver {
		if err := prov.Attach("lmr", func(uint64, bool, *core.Changeset) error {
			time.Sleep(ppDeliveryCost)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if _, _, err := prov.Subscribe("lmr",
			`search CycleProvider c register c where c.serverPort >= 0`); err != nil {
			b.Fatal(err)
		}
	}
	var next int64 = ppRuleBase
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		n := b.N / writers
		if w < b.N%writers {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				base := atomic.AddInt64(&next, ppBatch) - ppBatch
				if err := prov.RegisterDocuments(gen.Batch(int(base), ppBatch)); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N), "us/op")
}

func BenchmarkPublishPipelined(b *testing.B) {
	b.Run("filterOnly", func(b *testing.B) { publishPipelinedRun(b, 1, false) })
	b.Run("sequential", func(b *testing.B) { publishPipelinedRun(b, 1, true) })
	b.Run("pipelined", func(b *testing.B) { publishPipelinedRun(b, 4, true) })
}
